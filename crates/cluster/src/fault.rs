//! Deterministic fault injection for the simulated cluster.
//!
//! A [`FaultPlan`] scripts what goes wrong — per-machine slowdowns,
//! fail windows over fan-out rounds, and seeded transient message drops
//! — and a [`ResilienceConfig`] scripts how the coordinator responds:
//! per-machine deadlines derived from the *modeled* service time,
//! bounded retries with deterministic doubling backoff, and optional
//! request hedging. Everything runs on the modeled virtual clock, so an
//! experiment with the same plan, seed, and workload replays
//! bit-identically on any host; measured wall time never feeds a fault
//! decision.
//!
//! The plan is consulted only by
//! [`Cluster::try_query_many`](crate::Cluster::try_query_many). An
//! **empty** plan short-circuits the whole machinery (no deadlines, no
//! draws), which is what pins the fault-free resilient path bit-identical
//! to [`Cluster::query_many`](crate::Cluster::query_many).

/// One scripted fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Fault {
    /// Machine `machine` computes at `factor`× its modeled service time
    /// (a straggler). `factor >= 1.0`.
    Slow {
        /// Machine index the slowdown applies to.
        machine: usize,
        /// Service-time multiplier (`1.0` = healthy).
        factor: f64,
    },
    /// Machine `machine` answers nothing during fan-out rounds
    /// `from_round..until_round` (a crash-recover window counted in
    /// resilient fan-out rounds, the cluster's failure epochs).
    Fail {
        /// Machine index that goes dark.
        machine: usize,
        /// First affected round (inclusive).
        from_round: u64,
        /// First recovered round (exclusive).
        until_round: u64,
    },
}

/// A seeded, replayable script of cluster faults.
///
/// The default/empty plan injects nothing and disables the resilience
/// machinery entirely (see the module docs).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
    drop_rate: f64,
    seed: u64,
}

impl FaultPlan {
    /// The plan that injects nothing.
    pub fn empty() -> Self {
        Self::default()
    }

    /// True when the plan injects nothing — the fast path that keeps the
    /// resilient fan-out bit-identical to the plain one.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty() && self.drop_rate == 0.0
    }

    /// Add a straggler: `machine` runs at `factor`× modeled service time.
    pub fn slow(mut self, machine: usize, factor: f64) -> Self {
        assert!(factor >= 1.0, "slow factor must be >= 1.0, got {factor}");
        self.faults.push(Fault::Slow { machine, factor });
        self
    }

    /// Add a fail window: `machine` is down for rounds
    /// `from_round..until_round`.
    pub fn fail(mut self, machine: usize, from_round: u64, until_round: u64) -> Self {
        assert!(from_round <= until_round, "empty-or-forward round window");
        self.faults.push(Fault::Fail {
            machine,
            from_round,
            until_round,
        });
        self
    }

    /// Enable seeded transient drops: each delivery attempt is lost with
    /// probability `rate`, decided by a counter-based hash of
    /// `(seed, machine, round, attempt)` — no RNG state, so concurrent
    /// rounds and replays agree bit for bit.
    pub fn with_drops(mut self, rate: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&rate), "drop rate must be in [0,1)");
        self.drop_rate = rate;
        self.seed = seed;
        self
    }

    /// The scripted faults, in insertion order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Per-attempt transient drop probability.
    pub fn drop_rate(&self) -> f64 {
        self.drop_rate
    }

    /// Combined slowdown factor for `machine` (product of matching
    /// [`Fault::Slow`] entries; `1.0` when healthy).
    pub fn slow_factor(&self, machine: usize) -> f64 {
        self.faults
            .iter()
            .filter_map(|f| match *f {
                Fault::Slow { machine: m, factor } if m == machine => Some(factor),
                _ => None,
            })
            .product()
    }

    /// Is `machine` inside a fail window at `round`?
    pub fn is_down(&self, machine: usize, round: u64) -> bool {
        self.faults.iter().any(|f| match *f {
            Fault::Fail {
                machine: m,
                from_round,
                until_round,
            } => m == machine && (from_round..until_round).contains(&round),
            _ => false,
        })
    }

    /// Does delivery attempt `attempt` from `machine` in `round` get
    /// dropped? Deterministic in `(seed, machine, round, attempt)`.
    pub fn drops(&self, machine: usize, round: u64, attempt: u32) -> bool {
        if self.drop_rate == 0.0 {
            return false;
        }
        let mut h = splitmix64(self.seed ^ 0xD20B_5EED_0F0E_7A11);
        h = splitmix64(h ^ machine as u64);
        h = splitmix64(h ^ round);
        h = splitmix64(h ^ u64::from(attempt));
        // 53 uniform bits -> [0,1).
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < self.drop_rate
    }
}

/// SplitMix64 finalizer — the counter-based hash behind
/// [`FaultPlan::drops`]. Stateless, so draws are independent of call
/// order (unlike a streamed RNG) and replay bit-identically.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How the coordinator responds to faults: deadlines, retries, hedging,
/// and the deterministic service-time proxy the deadlines derive from.
///
/// All times are *modeled* (virtual-clock) seconds. Measured wall time
/// never feeds a timeout decision — that would make experiments
/// host-dependent.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResilienceConfig {
    /// Deadline floor: no per-attempt deadline is shorter than this.
    pub timeout_floor_seconds: f64,
    /// Per-machine deadline = `max(floor, factor × modeled healthy
    /// reply time)` — the "deadline derived from the modeled service
    /// time" knob. A healthy machine can never miss it.
    pub timeout_factor: f64,
    /// Delivery attempts per machine per round (>= 1; first try
    /// included).
    pub max_attempts: u32,
    /// Base backoff after a lost attempt; doubles per retry.
    pub backoff_seconds: f64,
    /// When `Some(f)`, a hedge request is launched on a healthy replica
    /// after `f × modeled healthy reply time`; the reply used is
    /// whichever finishes first. Rescues stragglers without waiting out
    /// the deadline.
    pub hedge_after_factor: Option<f64>,
    /// Modeled compute seconds per reply entry (the deterministic
    /// service-time proxy; the measured per-machine seconds stay
    /// reported but never drive fault logic).
    pub seconds_per_entry: f64,
    /// Fixed per-round modeled overhead of one machine's service.
    pub floor_seconds: f64,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            timeout_floor_seconds: 5e-3,
            timeout_factor: 4.0,
            max_attempts: 3,
            backoff_seconds: 1e-3,
            hedge_after_factor: Some(2.0),
            seconds_per_entry: 50e-9,
            floor_seconds: 200e-6,
        }
    }
}

impl ResilienceConfig {
    /// Modeled compute seconds for a reply carrying `entries` entries.
    pub fn modeled_service_seconds(&self, entries: usize) -> f64 {
        self.floor_seconds + entries as f64 * self.seconds_per_entry
    }
}

/// What happened to one machine during one resilient fan-out round.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineOutcome {
    /// Did a reply make it to the coordinator before attempts ran out?
    pub answered: bool,
    /// Delivery attempts consumed (1 = first try landed).
    pub attempts: u32,
    /// Was the accepted reply the hedge request's?
    pub hedged: bool,
    /// Modeled seconds from round start until the reply was accepted
    /// (or until the coordinator gave up).
    pub reply_seconds: f64,
}

/// Which machines answered one resilient fan-out round — the record
/// `Cluster::try_query_many` hands the serving layer so it can decide
/// between an exact answer and graceful degradation.
#[derive(Clone, Debug, PartialEq)]
pub struct FanoutOutcome {
    /// The round's index on this cluster's monotone round counter (the
    /// epoch [`Fault::Fail`] windows are expressed in).
    pub round: u64,
    /// Per-machine outcomes, in machine order.
    pub machines: Vec<MachineOutcome>,
}

impl FanoutOutcome {
    /// True when every machine answered — the partial sums are then the
    /// exact PPVs.
    pub fn complete(&self) -> bool {
        self.machines.iter().all(|m| m.answered)
    }

    /// Indices of the machines that never answered.
    pub fn missing(&self) -> Vec<usize> {
        self.machines
            .iter()
            .enumerate()
            .filter(|(_, m)| !m.answered)
            .map(|(i, _)| i)
            .collect()
    }

    /// How many machines answered.
    pub fn answered(&self) -> usize {
        self.machines.iter().filter(|m| m.answered).count()
    }

    /// Modeled duration of the round: the slowest machine timeline
    /// (replies arrive in parallel; give-ups hold the round open too).
    pub fn modeled_round_seconds(&self) -> f64 {
        self.machines
            .iter()
            .map(|m| m.reply_seconds)
            .fold(0.0, f64::max)
    }
}

/// Play out one machine's delivery timeline on the modeled clock:
/// attempts, deadline waits, backoff, and hedging. Pure — same inputs,
/// same outcome, on every host.
pub fn simulate_attempts(
    plan: &FaultPlan,
    res: &ResilienceConfig,
    machine: usize,
    round: u64,
    service_seconds: f64,
    wire_seconds: f64,
) -> MachineOutcome {
    let healthy = service_seconds + wire_seconds;
    let deadline = res
        .timeout_floor_seconds
        .max(res.timeout_factor * healthy);
    let slowed = service_seconds * plan.slow_factor(machine) + wire_seconds;
    let max_attempts = res.max_attempts.max(1);
    let mut clock = 0.0;
    let mut hedged = false;
    for attempt in 1..=max_attempts {
        let lost = plan.is_down(machine, round) || plan.drops(machine, round, attempt);
        if !lost {
            let mut completion = slowed;
            if let Some(f) = res.hedge_after_factor {
                // The hedge goes to a healthy replica of the shard at
                // f×healthy and finishes a healthy service later.
                let hedge_completion = (f + 1.0) * healthy;
                if hedge_completion < completion {
                    completion = hedge_completion;
                    hedged = true;
                }
            }
            if completion <= deadline {
                return MachineOutcome {
                    answered: true,
                    attempts: attempt,
                    hedged,
                    reply_seconds: clock + completion,
                };
            }
        }
        // Lost or past-deadline: the coordinator waits the deadline out,
        // then backs off (doubling) before retrying.
        clock += deadline;
        if attempt < max_attempts {
            clock += res.backoff_seconds * f64::from(1u32 << (attempt - 1).min(20));
        }
    }
    MachineOutcome {
        answered: false,
        attempts: max_attempts,
        hedged,
        reply_seconds: clock,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty_and_injects_nothing() {
        let plan = FaultPlan::empty();
        assert!(plan.is_empty());
        assert_eq!(plan.slow_factor(3), 1.0);
        assert!(!plan.is_down(0, 0));
        assert!(!plan.drops(0, 0, 1));
    }

    #[test]
    fn fail_window_is_half_open_over_rounds() {
        let plan = FaultPlan::empty().fail(2, 5, 8);
        assert!(!plan.is_empty());
        assert!(!plan.is_down(2, 4));
        assert!(plan.is_down(2, 5));
        assert!(plan.is_down(2, 7));
        assert!(!plan.is_down(2, 8));
        assert!(!plan.is_down(1, 6));
    }

    #[test]
    fn slow_factors_multiply_per_machine() {
        let plan = FaultPlan::empty().slow(1, 2.0).slow(1, 3.0).slow(2, 4.0);
        assert_eq!(plan.slow_factor(1), 6.0);
        assert_eq!(plan.slow_factor(2), 4.0);
        assert_eq!(plan.slow_factor(0), 1.0);
    }

    #[test]
    fn drops_are_deterministic_and_near_rate() {
        let plan = FaultPlan::empty().with_drops(0.25, 42);
        let mut dropped = 0usize;
        let total = 4000usize;
        for round in 0..1000u64 {
            for machine in 0..4usize {
                let a = plan.drops(machine, round, 1);
                assert_eq!(a, plan.drops(machine, round, 1), "replay must agree");
                dropped += usize::from(a);
            }
        }
        let rate = dropped as f64 / total as f64;
        assert!((rate - 0.25).abs() < 0.05, "empirical drop rate {rate}");
        // A different seed decides differently somewhere.
        let other = FaultPlan::empty().with_drops(0.25, 43);
        assert!((0..200u64).any(|r| plan.drops(0, r, 1) != other.drops(0, r, 1)));
    }

    #[test]
    fn healthy_machine_always_answers_first_try() {
        let plan = FaultPlan::empty().slow(9, 8.0); // someone else
        let res = ResilienceConfig::default();
        let o = simulate_attempts(&plan, &res, 0, 0, 400e-6, 120e-6);
        assert!(o.answered);
        assert_eq!(o.attempts, 1);
        assert!(!o.hedged);
        assert!((o.reply_seconds - 520e-6).abs() < 1e-12);
    }

    #[test]
    fn straggler_is_rescued_by_hedging() {
        let plan = FaultPlan::empty().slow(0, 8.0);
        let res = ResilienceConfig::default();
        let o = simulate_attempts(&plan, &res, 0, 0, 400e-6, 20e-6);
        assert!(o.answered);
        assert!(o.hedged);
        // Hedge completes at 3x healthy, under the 4x-healthy deadline.
        assert!(o.reply_seconds < 8.0 * 400e-6);
    }

    #[test]
    fn straggler_without_hedging_misses_every_deadline() {
        let plan = FaultPlan::empty().slow(0, 8.0);
        let res = ResilienceConfig {
            hedge_after_factor: None,
            timeout_floor_seconds: 0.0,
            ..ResilienceConfig::default()
        };
        let o = simulate_attempts(&plan, &res, 0, 0, 400e-6, 20e-6);
        assert!(!o.answered);
        assert_eq!(o.attempts, res.max_attempts);
    }

    #[test]
    fn transient_drop_is_rescued_by_retry() {
        // Find a (round, attempt-1 dropped, attempt-2 kept) instance.
        let plan = FaultPlan::empty().with_drops(0.5, 7);
        let res = ResilienceConfig::default();
        let round = (0..500u64)
            .find(|&r| plan.drops(0, r, 1) && !plan.drops(0, r, 2))
            .expect("a rescued round exists at 50% drops");
        let o = simulate_attempts(&plan, &res, 0, round, 300e-6, 50e-6);
        assert!(o.answered);
        assert_eq!(o.attempts, 2);
        // Timeline: one waited-out deadline + backoff + the good attempt.
        let deadline = res.timeout_factor * 350e-6;
        let deadline = res.timeout_floor_seconds.max(deadline);
        let expect = deadline + res.backoff_seconds + 350e-6;
        assert!((o.reply_seconds - expect).abs() < 1e-12);
    }

    #[test]
    fn failed_machine_exhausts_attempts() {
        let plan = FaultPlan::empty().fail(1, 0, 10);
        let res = ResilienceConfig::default();
        let o = simulate_attempts(&plan, &res, 1, 3, 300e-6, 50e-6);
        assert!(!o.answered);
        assert_eq!(o.attempts, 3);
        assert!(o.reply_seconds > 0.0);
        // Outside the window the same machine answers immediately.
        let o = simulate_attempts(&plan, &res, 1, 10, 300e-6, 50e-6);
        assert!(o.answered);
    }

    #[test]
    fn fanout_outcome_reports_missing_machines() {
        let outcome = FanoutOutcome {
            round: 0,
            machines: vec![
                MachineOutcome {
                    answered: true,
                    attempts: 1,
                    hedged: false,
                    reply_seconds: 1e-3,
                },
                MachineOutcome {
                    answered: false,
                    attempts: 3,
                    hedged: false,
                    reply_seconds: 2e-2,
                },
            ],
        };
        assert!(!outcome.complete());
        assert_eq!(outcome.missing(), vec![1]);
        assert_eq!(outcome.answered(), 1);
        assert!((outcome.modeled_round_seconds() - 2e-2).abs() < 1e-15);
    }
}
