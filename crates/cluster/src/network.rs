//! Network cost model.
//!
//! Machines reach the coordinator through a shared switch, so concurrent
//! replies serialize on the coordinator's ingress link: modeled receive
//! time is `latency + total_bytes / bandwidth`. The defaults match the
//! paper's testbed (100 Mbps TP-LINK switch, LAN latency).

/// Latency/bandwidth model for machine → coordinator transfers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkModel {
    /// One-way latency per message, seconds.
    pub latency_seconds: f64,
    /// Coordinator ingress bandwidth, bytes per second.
    pub bandwidth_bytes_per_second: f64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        Self {
            latency_seconds: 100e-6,                       // 0.1 ms LAN
            bandwidth_bytes_per_second: 100e6 / 8.0,       // 100 Mbps
        }
    }
}

impl NetworkModel {
    /// An effectively infinite network (isolates compute time).
    pub fn infinite() -> Self {
        Self {
            latency_seconds: 0.0,
            bandwidth_bytes_per_second: f64::INFINITY,
        }
    }

    /// Modeled seconds for the coordinator to receive `total_bytes` from
    /// `senders` concurrent machines.
    pub fn receive_seconds(&self, total_bytes: u64, senders: usize) -> f64 {
        if senders == 0 {
            return 0.0;
        }
        self.latency_seconds + total_bytes as f64 / self.bandwidth_bytes_per_second
    }

    /// Modeled seconds for one machine's reply of `bytes` to cross the
    /// wire on its own — the per-machine term the fault layer prices
    /// delivery attempts with (a retry resends the same reply, a hedge
    /// pays it again on the healthy replica's path).
    pub fn one_way_seconds(&self, bytes: u64) -> f64 {
        self.latency_seconds + bytes as f64 / self.bandwidth_bytes_per_second
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_100mbps() {
        let m = NetworkModel::default();
        // 12.5 MB/s: receiving 1.25 MB takes ~0.1 s (plus latency).
        let t = m.receive_seconds(1_250_000, 4);
        assert!((t - 0.1001).abs() < 1e-4, "{t}");
    }

    #[test]
    fn infinite_network_is_free() {
        let m = NetworkModel::infinite();
        assert_eq!(m.receive_seconds(u64::MAX, 10), 0.0);
    }

    #[test]
    fn zero_senders_zero_time() {
        assert_eq!(NetworkModel::default().receive_seconds(1000, 0), 0.0);
    }
}
