//! Query execution across simulated machines.
//!
//! A query fans out to every simulated machine; each computes its share
//! of Eq. 5/7 from locally-stored vectors (real, measured work), ships
//! one sparse vector to the coordinator (counted in bytes), and the
//! coordinator sums (real, measured work). The machines are **not**
//! separate threads: they execute sequentially in the caller's thread and
//! are timed individually, so that on a shared (possibly single-core)
//! host each machine's measured compute time still reflects what a
//! dedicated machine would spend — see [`Cluster::query_preference`].
//! Concurrency across machines is then *modeled* by taking the maximum
//! of those per-machine times, exactly how §6.2.2 reports runtime.
//!
//! The paper's headline metrics map to [`ClusterQueryReport`] fields:
//!
//! * "Runtime" (Figures 10/14/21/23…): [`ClusterQueryReport::runtime_seconds`]
//!   — maximum machine compute time, plus coordinator aggregation, as
//!   §6.2.2 reports ("the maximum runtime across all machines").
//! * "Communication Cost" (Figures 13/22…): total bytes received by the
//!   coordinator, [`ClusterQueryReport::total_bytes`].
//!
//! [`Cluster::query_many`] is the serving-path variant: one fan-out round
//! answers a whole *batch* of distinct sources, amortizing the per-round
//! latency and the per-machine scratch allocations (`ppr-serve` builds
//! its request batching on top of it).
//!
//! ## Modeled vs real concurrency
//!
//! Under [`ParallelismMode::Sequential`] (the default) machines execute
//! one after another in the caller's thread and concurrency is *modeled*
//! by taking the max of the individually measured per-machine times —
//! the only measurement mode whose per-machine numbers reflect dedicated
//! hardware on a shared host. Under [`ParallelismMode::Threads`] the
//! fan-out is *real*: one scoped worker thread per simulated machine (up
//! to the worker cap), each with its own reusable [`Scratch`] arena, so
//! [`ClusterQueryReport::wall_seconds`] approaches the slowest machine's
//! time on a host with enough cores. Replies are bit-identical either
//! way: machines share nothing but the read-only index and the
//! coordinator always sums in machine order.

use crate::fault::{simulate_attempts, FanoutOutcome, FaultPlan, MachineOutcome, ResilienceConfig};
use crate::socket::SocketCluster;
use crate::{ClusterConfig, NetworkModel, ParallelismMode};
use ppr_core::gpa::GpaIndex;
use ppr_core::hgpa::HgpaIndex;
use ppr_core::{Scratch, SparseVector};
use ppr_graph::NodeId;
use ppr_core::parallel::Stopwatch;
use ppr_wire::reply_frame_bytes;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Anything the cluster can serve queries from: an index whose per-machine
/// reply vectors sum to the exact PPV.
pub trait DistributedQueryable: Sync {
    /// Number of machines the index was built for.
    fn machines(&self) -> usize;
    /// Number of graph nodes.
    fn node_count(&self) -> usize;
    /// The reply vector machine `machine` computes for query `u`.
    fn machine_vector(&self, u: NodeId, machine: u32) -> SparseVector;
    /// The reply vector for a weighted preference-set query (linearity).
    fn machine_vector_preference(
        &self,
        preference: &[(NodeId, f64)],
        machine: u32,
    ) -> SparseVector;

    /// [`DistributedQueryable::machine_vector_preference`] accumulating
    /// into a caller-owned [`Scratch`] arena. The default ignores the
    /// arena and falls back to a fresh allocation; indexes override it so
    /// a fan-out worker pays the O(n) dense allocation once per round
    /// rather than once per source.
    fn machine_vector_preference_into(
        &self,
        preference: &[(NodeId, f64)],
        machine: u32,
        scratch: &mut Scratch,
    ) -> SparseVector {
        let _ = scratch;
        self.machine_vector_preference(preference, machine)
    }

    /// Reply vectors machine `machine` computes for a batch of distinct
    /// sources — one fan-out round, one reply vector *per source* (unlike
    /// [`DistributedQueryable::machine_vector_preference`], which folds a
    /// weighted set into a single combined reply), all accumulated
    /// through the one caller-owned [`Scratch`] arena.
    fn machine_vectors_into(
        &self,
        sources: &[NodeId],
        machine: u32,
        scratch: &mut Scratch,
    ) -> Vec<SparseVector> {
        sources
            .iter()
            .map(|&u| self.machine_vector_preference_into(&[(u, 1.0)], machine, scratch))
            .collect()
    }

    /// Reply vectors for a batch of distinct sources, sharing one scratch
    /// arena across the whole batch (one O(n) dense allocation per
    /// machine per round, not per source).
    fn machine_vectors(&self, sources: &[NodeId], machine: u32) -> Vec<SparseVector> {
        let mut scratch = Scratch::with_len(self.node_count());
        self.machine_vectors_into(sources, machine, &mut scratch)
    }
}

impl DistributedQueryable for GpaIndex {
    fn machines(&self) -> usize {
        GpaIndex::machines(self)
    }
    fn node_count(&self) -> usize {
        GpaIndex::node_count(self)
    }
    fn machine_vector(&self, u: NodeId, machine: u32) -> SparseVector {
        GpaIndex::machine_vector(self, u, machine)
    }
    fn machine_vector_preference(
        &self,
        preference: &[(NodeId, f64)],
        machine: u32,
    ) -> SparseVector {
        GpaIndex::machine_vector_preference(self, preference, machine)
    }
    fn machine_vector_preference_into(
        &self,
        preference: &[(NodeId, f64)],
        machine: u32,
        scratch: &mut Scratch,
    ) -> SparseVector {
        GpaIndex::machine_vector_preference_into(self, preference, machine, scratch)
    }
}

impl DistributedQueryable for HgpaIndex {
    fn machines(&self) -> usize {
        HgpaIndex::machines(self)
    }
    fn node_count(&self) -> usize {
        HgpaIndex::node_count(self)
    }
    fn machine_vector(&self, u: NodeId, machine: u32) -> SparseVector {
        HgpaIndex::machine_vector(self, u, machine)
    }
    fn machine_vector_preference(
        &self,
        preference: &[(NodeId, f64)],
        machine: u32,
    ) -> SparseVector {
        HgpaIndex::machine_vector_preference(self, preference, machine)
    }
    fn machine_vector_preference_into(
        &self,
        preference: &[(NodeId, f64)],
        machine: u32,
        scratch: &mut Scratch,
    ) -> SparseVector {
        HgpaIndex::machine_vector_preference_into(self, preference, machine, scratch)
    }
}

/// A [`PersistedIndex`](ppr_core::persist::PersistedIndex) serves exactly
/// like the index it holds: a cold-started process answers the same
/// fan-out queries, bit-identically, without knowing the kind up front.
impl DistributedQueryable for ppr_core::persist::PersistedIndex {
    fn machines(&self) -> usize {
        match self {
            Self::Gpa(i) => GpaIndex::machines(i),
            Self::Hgpa(i) => HgpaIndex::machines(i),
        }
    }
    fn node_count(&self) -> usize {
        match self {
            Self::Gpa(i) => GpaIndex::node_count(i),
            Self::Hgpa(i) => HgpaIndex::node_count(i),
        }
    }
    fn machine_vector(&self, u: NodeId, machine: u32) -> SparseVector {
        match self {
            Self::Gpa(i) => GpaIndex::machine_vector(i, u, machine),
            Self::Hgpa(i) => HgpaIndex::machine_vector(i, u, machine),
        }
    }
    fn machine_vector_preference(
        &self,
        preference: &[(NodeId, f64)],
        machine: u32,
    ) -> SparseVector {
        match self {
            Self::Gpa(i) => GpaIndex::machine_vector_preference(i, preference, machine),
            Self::Hgpa(i) => HgpaIndex::machine_vector_preference(i, preference, machine),
        }
    }
    fn machine_vector_preference_into(
        &self,
        preference: &[(NodeId, f64)],
        machine: u32,
        scratch: &mut Scratch,
    ) -> SparseVector {
        match self {
            Self::Gpa(i) => GpaIndex::machine_vector_preference_into(i, preference, machine, scratch),
            Self::Hgpa(i) => HgpaIndex::machine_vector_preference_into(i, preference, machine, scratch),
        }
    }
}

/// Per-machine execution record for one query.
#[derive(Clone, Copy, Debug)]
pub struct MachineStats {
    /// Seconds this machine spent computing its reply (real). The maximum
    /// across machines is the per-machine component of the paper's
    /// "runtime" metric (Figures 10/14/21/23).
    pub compute_seconds: f64,
    /// Bytes of the reply vector (serialized size); summed over machines
    /// this is the paper's "communication cost" (Figures 13/22).
    pub bytes_sent: u64,
    /// Entries in the reply vector (the nnz behind `bytes_sent`).
    pub entries: usize,
}

/// Everything measured for one distributed query.
#[derive(Clone, Debug)]
pub struct ClusterQueryReport {
    /// The exact PPV (sum of machine replies).
    pub result: SparseVector,
    /// Per-machine records (one entry per simulated machine).
    pub machines: Vec<MachineStats>,
    /// Seconds the coordinator spent summing replies (real) — the second
    /// component of the paper's "runtime" (§6.2.2: machines compute, then
    /// "the server aggregates the received vectors").
    pub coordinator_seconds: f64,
    /// Modeled wire time for the single communication round (the paper's
    /// 100 Mbps switch, §6.1). Not part of `runtime_seconds` — the paper
    /// reports compute runtime and communication *bytes* separately; this
    /// field only feeds `modeled_end_to_end_seconds`.
    pub modeled_network_seconds: f64,
    /// Real elapsed seconds of the whole round in this process (fan-out
    /// plus coordinator sum). Under [`ParallelismMode::Sequential`] this
    /// is ≈ the *sum* of machine times; under
    /// [`ParallelismMode::Threads`] with enough cores it approaches the
    /// *max* — the wall-clock counterpart of the modeled
    /// [`ClusterQueryReport::runtime_seconds`].
    pub wall_seconds: f64,
}

impl ClusterQueryReport {
    /// The paper's "runtime": max machine compute + coordinator time.
    pub fn runtime_seconds(&self) -> f64 {
        self.max_machine_seconds() + self.coordinator_seconds
    }

    /// Maximum per-machine compute time.
    pub fn max_machine_seconds(&self) -> f64 {
        self.machines
            .iter()
            .map(|m| m.compute_seconds)
            .fold(0.0, f64::max)
    }

    /// Total bytes the coordinator received — the paper's communication
    /// cost metric.
    pub fn total_bytes(&self) -> u64 {
        self.machines.iter().map(|m| m.bytes_sent).sum()
    }

    /// Modeled end-to-end latency: slowest machine, then the wire, then
    /// the coordinator's aggregation.
    pub fn modeled_end_to_end_seconds(&self) -> f64 {
        self.max_machine_seconds() + self.modeled_network_seconds + self.coordinator_seconds
    }
}

/// Run `compute` for machines `0..machines`, returning per-machine
/// `(reply, measured seconds)` in machine order.
///
/// In the sequential (measurement) mode each machine gets a **fresh**
/// [`Scratch`] arena allocated inside its timed region: every machine
/// pays the same O(n) allocation a dedicated machine would, so
/// per-machine times stay comparable (the §6.2.2 max would otherwise be
/// biased toward whichever machine ran first). Scratch reuse still
/// amortizes *within* a machine's batch of sources. In the threaded
/// (serving) mode each worker owns one arena reused across all machines
/// it executes — per-machine times there are throughput-oriented, not
/// measurement-grade. Machines are dealt to workers round-robin; results
/// are reassembled by machine index, so the output — and everything the
/// coordinator derives from it — is independent of scheduling.
fn fan_out<T, F>(machines: usize, mode: ParallelismMode, compute: F) -> Vec<(T, f64)>
where
    T: Send,
    F: Fn(u32, &mut Scratch) -> T + Sync,
{
    let workers = mode.workers().min(machines.max(1));
    if workers <= 1 {
        return (0..machines as u32)
            .map(|m| {
                let t = Stopwatch::start();
                let mut scratch = Scratch::new();
                let v = compute(m, &mut scratch);
                (v, t.elapsed_seconds())
            })
            .collect();
    }

    let mut slots: Vec<Option<(T, f64)>> = (0..machines).map(|_| None).collect();
    let compute = &compute;
    let outputs: Vec<Vec<(usize, T, f64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let mut scratch = Scratch::new();
                    (w..machines)
                        .step_by(workers)
                        .map(|m| {
                            let t = Stopwatch::start();
                            let v = compute(m as u32, &mut scratch);
                            (m, v, t.elapsed_seconds())
                        })
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            // audit:allow(serve-panic): join only fails if the worker already
            // panicked; propagating beats hiding the poisoned round
            .map(|h| h.join().expect("machine worker thread"))
            .collect()
    });
    for (m, v, secs) in outputs.into_iter().flatten() {
        slots[m] = Some((v, secs));
    }
    slots
        .into_iter()
        // audit:allow(serve-panic): the round-robin deal covers every machine
        // index exactly once, so each slot is filled
        .map(|s| s.expect("every machine computed"))
        .collect()
}

/// The simulated cluster: a thin executor over a distributed index.
pub struct Cluster {
    network: NetworkModel,
    parallelism: ParallelismMode,
    plan: FaultPlan,
    resilience: ResilienceConfig,
    /// Monotone resilient fan-out round counter — the epoch axis
    /// [`Fault::Fail`](crate::fault::Fault::Fail) windows are scripted
    /// in. Only [`Cluster::try_query_many`] advances it; the plain query
    /// paths ignore it entirely.
    round: AtomicU64,
    /// Real multi-process transport, when attached. `None` (the default)
    /// keeps every fan-out on the modeled in-process path.
    socket: Option<Arc<SocketCluster>>,
}

impl Cluster {
    /// Create a cluster with the given configuration. The machine count is
    /// taken from the index at query time (indexes are built for a fixed
    /// machine count); `config.machines` is validated against it.
    pub fn new(config: ClusterConfig) -> Self {
        Self::with_faults(config, FaultPlan::empty(), ResilienceConfig::default())
    }

    /// A cluster with a scripted [`FaultPlan`] and the resilience policy
    /// that responds to it. With an empty plan this is exactly
    /// [`Cluster::new`].
    pub fn with_faults(
        config: ClusterConfig,
        plan: FaultPlan,
        resilience: ResilienceConfig,
    ) -> Self {
        Self {
            network: config.network,
            parallelism: config.parallelism,
            plan,
            resilience,
            round: AtomicU64::new(0),
            socket: None,
        }
    }

    /// Route fan-outs over a real multi-process [`SocketCluster`] instead
    /// of the in-process modeled machines. Answers stay bit-identical
    /// (workers compute the same shares from the same index and the
    /// coordinator sums in the same machine order); byte counts switch
    /// from the shared frame formula to *measured* frame sizes — which
    /// the formula pins equal. Fan-outs fall back to the modeled path if
    /// the socket cluster's machine count doesn't match the index.
    pub fn attach_socket(&mut self, socket: Arc<SocketCluster>) {
        self.socket = Some(socket);
    }

    /// Detach the socket transport, returning every fan-out to the
    /// modeled in-process path.
    pub fn detach_socket(&mut self) -> Option<Arc<SocketCluster>> {
        self.socket.take()
    }

    /// The attached socket transport, if any.
    pub fn socket(&self) -> Option<&Arc<SocketCluster>> {
        self.socket.as_ref()
    }

    /// Default cluster (paper's network model, sequential machines).
    pub fn with_default_network() -> Self {
        Self::new(ClusterConfig::default())
    }

    /// How this cluster executes machine fan-outs.
    pub fn parallelism(&self) -> ParallelismMode {
        self.parallelism
    }

    /// Replace the fault plan (the round counter keeps advancing — fail
    /// windows are absolute on this cluster's round axis).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.plan = plan;
    }

    /// The active fault plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Replace the resilience policy.
    pub fn set_resilience(&mut self, resilience: ResilienceConfig) {
        self.resilience = resilience;
    }

    /// The active resilience policy.
    pub fn resilience(&self) -> ResilienceConfig {
        self.resilience
    }

    /// Resilient fan-out rounds started so far.
    pub fn rounds_started(&self) -> u64 {
        self.round.load(Ordering::Relaxed)
    }

    /// Execute one query: fan out to machine threads, gather, sum.
    pub fn query<I: DistributedQueryable>(&self, index: &I, u: NodeId) -> ClusterQueryReport {
        self.query_preference(index, &[(u, 1.0)])
    }

    /// Execute a weighted preference-set query (the paper's general `P`):
    /// still one communication round — each machine folds every preference
    /// member into its single reply.
    ///
    /// In the default [`ParallelismMode::Sequential`] mode machines run
    /// **sequentially, timed individually**: on a shared host (possibly a
    /// single core) this is the only measurement where a machine's
    /// compute time reflects what a dedicated machine would spend. The
    /// paper's "runtime" metric is the maximum of these plus the
    /// coordinator's aggregation, which models machines running
    /// concurrently on their own hardware. Under
    /// [`ParallelismMode::Threads`] the machines really run concurrently
    /// (bit-identical result; see
    /// [`ClusterQueryReport::wall_seconds`]).
    pub fn query_preference<I: DistributedQueryable>(
        &self,
        index: &I,
        preference: &[(NodeId, f64)],
    ) -> ClusterQueryReport {
        if let Some(sock) = self.socket.as_deref() {
            if sock.machines() == index.machines() {
                return self.query_preference_socket(sock, index, preference);
            }
        }
        let t_round = Stopwatch::start();
        let machines = index.machines();
        let replies: Vec<(SparseVector, f64)> =
            fan_out(machines, self.parallelism, |m, scratch| {
                index.machine_vector_preference_into(preference, m, scratch)
            });

        let stats: Vec<MachineStats> = replies
            .iter()
            .map(|(v, secs)| MachineStats {
                compute_seconds: *secs,
                bytes_sent: reply_frame_bytes(std::slice::from_ref(v)),
                entries: v.nnz(),
            })
            .collect();
        let total_bytes: u64 = stats.iter().map(|s| s.bytes_sent).sum();

        // Coordinator: sum the replies into a dense accumulator.
        let t = Stopwatch::start();
        let mut scratch = Scratch::with_len(index.node_count());
        for (v, _) in &replies {
            scratch.scatter(v, 1.0);
        }
        let result = scratch.harvest();
        let coordinator_seconds = t.elapsed_seconds();

        ClusterQueryReport {
            result,
            machines: stats,
            coordinator_seconds,
            modeled_network_seconds: self.network.receive_seconds(total_bytes, machines),
            wall_seconds: t_round.elapsed_seconds(),
        }
    }

    /// Run a batch of queries, returning per-query reports.
    ///
    /// Each query is an independent fan-out round — this measures the
    /// paper's per-query figures. For the serving path, where one round
    /// should answer many sources at once, use [`Cluster::query_many`].
    pub fn query_batch<I: DistributedQueryable>(
        &self,
        index: &I,
        queries: &[NodeId],
    ) -> Vec<ClusterQueryReport> {
        queries.iter().map(|&u| self.query(index, u)).collect()
    }

    /// Answer a batch of **distinct** sources in one fan-out round.
    ///
    /// Each machine computes one reply vector per source (Eq. 5/7 — the
    /// per-source shares that, summed over machines, give each exact PPV)
    /// and ships them all in a single message, so the round's latency and
    /// each machine's scratch allocations amortize across the batch. The
    /// coordinator then sums per source. Sources must be distinct — the
    /// caller (e.g. `ppr-serve`) dedupes so repeated sources are computed
    /// once.
    pub fn query_many<I: DistributedQueryable>(
        &self,
        index: &I,
        sources: &[NodeId],
    ) -> ClusterBatchReport {
        if let Some(sock) = self.socket.as_deref() {
            if sock.machines() == index.machines() {
                return self.query_many_socket(sock, index, sources);
            }
        }
        let t_round = Stopwatch::start();
        let machines = index.machines();
        let replies: Vec<(Vec<SparseVector>, f64)> =
            fan_out(machines, self.parallelism, |m, scratch| {
                index.machine_vectors_into(sources, m, scratch)
            });

        let stats: Vec<MachineStats> = replies
            .iter()
            .map(|(vs, secs)| MachineStats {
                compute_seconds: *secs,
                bytes_sent: reply_frame_bytes(vs),
                entries: vs.iter().map(SparseVector::nnz).sum(),
            })
            .collect();
        let total_bytes: u64 = stats.iter().map(|s| s.bytes_sent).sum();

        // Coordinator: sum the replies per source into one dense scratch.
        let t = Stopwatch::start();
        let mut scratch = Scratch::with_len(index.node_count());
        let mut results = Vec::with_capacity(sources.len());
        for qi in 0..sources.len() {
            for (vs, _) in &replies {
                scratch.scatter(&vs[qi], 1.0);
            }
            results.push(scratch.harvest());
        }
        let coordinator_seconds = t.elapsed_seconds();

        ClusterBatchReport {
            results,
            machines: stats,
            coordinator_seconds,
            modeled_network_seconds: self.network.receive_seconds(total_bytes, machines),
            wall_seconds: t_round.elapsed_seconds(),
        }
    }

    /// [`Cluster::query_many`] under the active [`FaultPlan`]: the same
    /// single fan-out round, but each machine's reply is pushed through
    /// the modeled delivery timeline (deadlines, retries, hedging — see
    /// [`crate::fault`]) and may fail to arrive. The coordinator sums
    /// whatever arrived, **in machine order**, so with an empty plan the
    /// results are bit-identical to [`Cluster::query_many`] — same
    /// machines, same order, same arithmetic.
    ///
    /// When [`FanoutOutcome::complete`] is false the partial sums in
    /// `results` are *not* exact PPVs; the serving layer decides whether
    /// to degrade to an approximate answer or retry the round later.
    /// Fault decisions run entirely on modeled time derived from reply
    /// entry counts — measured wall seconds are reported but never
    /// consulted, so a run replays bit-identically on any host.
    pub fn try_query_many<I: DistributedQueryable>(
        &self,
        index: &I,
        sources: &[NodeId],
    ) -> ResilientBatchReport {
        if let Some(sock) = self.socket.as_deref() {
            if sock.machines() == index.machines() {
                return self.try_query_many_socket(sock, index, sources);
            }
        }
        let t_round = Stopwatch::start();
        let machines = index.machines();
        let round = self.round.fetch_add(1, Ordering::Relaxed);
        let replies: Vec<(Vec<SparseVector>, f64)> =
            fan_out(machines, self.parallelism, |m, scratch| {
                index.machine_vectors_into(sources, m, scratch)
            });

        let stats: Vec<MachineStats> = replies
            .iter()
            .map(|(vs, secs)| MachineStats {
                compute_seconds: *secs,
                bytes_sent: reply_frame_bytes(vs),
                entries: vs.iter().map(SparseVector::nnz).sum(),
            })
            .collect();

        // Per-machine modeled delivery timelines. The empty-plan branch
        // skips deadlines entirely (a fault-free cluster has no reason to
        // time out its own machines), which pins it to `query_many`.
        let outcomes: Vec<MachineOutcome> = if self.plan.is_empty() {
            stats
                .iter()
                .map(|s| MachineOutcome {
                    answered: true,
                    attempts: 1,
                    hedged: false,
                    reply_seconds: self.resilience.modeled_service_seconds(s.entries)
                        + self.network.one_way_seconds(s.bytes_sent),
                })
                .collect()
        } else {
            stats
                .iter()
                .enumerate()
                .map(|(m, s)| {
                    simulate_attempts(
                        &self.plan,
                        &self.resilience,
                        m,
                        round,
                        self.resilience.modeled_service_seconds(s.entries),
                        self.network.one_way_seconds(s.bytes_sent),
                    )
                })
                .collect()
        };

        let delivered_bytes: u64 = stats
            .iter()
            .zip(&outcomes)
            .filter(|(_, o)| o.answered)
            .map(|(s, _)| s.bytes_sent)
            .sum();
        let answered = outcomes.iter().filter(|o| o.answered).count();

        // Coordinator: sum the *delivered* replies per source, in machine
        // order (identical arithmetic to `query_many` when all answered).
        let t = Stopwatch::start();
        let mut scratch = Scratch::with_len(index.node_count());
        let mut results = Vec::with_capacity(sources.len());
        for qi in 0..sources.len() {
            for ((vs, _), o) in replies.iter().zip(&outcomes) {
                if o.answered {
                    scratch.scatter(&vs[qi], 1.0);
                }
            }
            results.push(scratch.harvest());
        }
        let coordinator_seconds = t.elapsed_seconds();

        // Extra modeled delay attributable to the plan: the faulty round
        // timeline vs what the same replies would have taken fault-free.
        let healthy_round: f64 = stats
            .iter()
            .map(|s| {
                self.resilience.modeled_service_seconds(s.entries)
                    + self.network.one_way_seconds(s.bytes_sent)
            })
            .fold(0.0, f64::max);
        let outcome = FanoutOutcome {
            round,
            machines: outcomes,
        };
        let modeled_fault_seconds = if self.plan.is_empty() {
            0.0
        } else {
            (outcome.modeled_round_seconds() - healthy_round).max(0.0)
        };

        ResilientBatchReport {
            results,
            outcome,
            machines: stats,
            coordinator_seconds,
            modeled_network_seconds: self.network.receive_seconds(delivered_bytes, answered),
            modeled_fault_seconds,
            wall_seconds: t_round.elapsed_seconds(),
        }
    }

    /// [`Cluster::query_preference`] over the real wire: one fan-out
    /// round of `RequestPref` frames to the worker processes. A machine
    /// that exhausts its socket attempts (crash plus failed restarts) is
    /// computed locally by the coordinator from its own index copy —
    /// same bits, and its bytes still counted through the shared frame
    /// formula — because the plain query paths promise an exact answer.
    fn query_preference_socket<I: DistributedQueryable>(
        &self,
        sock: &SocketCluster,
        index: &I,
        preference: &[(NodeId, f64)],
    ) -> ClusterQueryReport {
        let t_round = Stopwatch::start();
        let machines = index.machines();
        let replies = sock.round_preference(preference, &self.resilience);
        let mut vectors: Vec<SparseVector> = Vec::with_capacity(machines);
        let mut stats: Vec<MachineStats> = Vec::with_capacity(machines);
        for (m, reply) in replies.into_iter().enumerate() {
            let (v, secs, bytes) = match reply {
                Some(mut r) => {
                    // `round_preference` validated exactly one vector.
                    let v = r.vectors.pop().unwrap_or_default();
                    (v, r.compute_seconds, r.frame_bytes)
                }
                None => {
                    let t = Stopwatch::start();
                    let mut scratch = Scratch::new();
                    let v =
                        index.machine_vector_preference_into(preference, m as u32, &mut scratch);
                    let secs = t.elapsed_seconds();
                    let bytes = reply_frame_bytes(std::slice::from_ref(&v));
                    (v, secs, bytes)
                }
            };
            stats.push(MachineStats {
                compute_seconds: secs,
                bytes_sent: bytes,
                entries: v.nnz(),
            });
            vectors.push(v);
        }
        let total_bytes: u64 = stats.iter().map(|s| s.bytes_sent).sum();

        // Coordinator sum, in machine order — the modeled path's exact
        // arithmetic, so the two transports answer identically.
        let t = Stopwatch::start();
        let mut scratch = Scratch::with_len(index.node_count());
        for v in &vectors {
            scratch.scatter(v, 1.0);
        }
        let result = scratch.harvest();
        let coordinator_seconds = t.elapsed_seconds();

        ClusterQueryReport {
            result,
            machines: stats,
            coordinator_seconds,
            modeled_network_seconds: self.network.receive_seconds(total_bytes, machines),
            wall_seconds: t_round.elapsed_seconds(),
        }
    }

    /// [`Cluster::query_many`] over the real wire, with the same
    /// local-fallback guarantee as [`Cluster::query_preference`]'s socket
    /// path: the batch always comes back exact.
    fn query_many_socket<I: DistributedQueryable>(
        &self,
        sock: &SocketCluster,
        index: &I,
        sources: &[NodeId],
    ) -> ClusterBatchReport {
        let t_round = Stopwatch::start();
        let machines = index.machines();
        let replies = sock.round(sources, &self.resilience);
        let mut per_machine: Vec<Vec<SparseVector>> = Vec::with_capacity(machines);
        let mut stats: Vec<MachineStats> = Vec::with_capacity(machines);
        for (m, reply) in replies.into_iter().enumerate() {
            let (vs, secs, bytes) = match reply {
                Some(r) => (r.vectors, r.compute_seconds, r.frame_bytes),
                None => {
                    let t = Stopwatch::start();
                    let mut scratch = Scratch::new();
                    let vs = index.machine_vectors_into(sources, m as u32, &mut scratch);
                    let secs = t.elapsed_seconds();
                    let bytes = reply_frame_bytes(&vs);
                    (vs, secs, bytes)
                }
            };
            stats.push(MachineStats {
                compute_seconds: secs,
                bytes_sent: bytes,
                entries: vs.iter().map(SparseVector::nnz).sum(),
            });
            per_machine.push(vs);
        }
        let total_bytes: u64 = stats.iter().map(|s| s.bytes_sent).sum();

        let t = Stopwatch::start();
        let mut scratch = Scratch::with_len(index.node_count());
        let mut results = Vec::with_capacity(sources.len());
        for qi in 0..sources.len() {
            for vs in &per_machine {
                scratch.scatter(&vs[qi], 1.0);
            }
            results.push(scratch.harvest());
        }
        let coordinator_seconds = t.elapsed_seconds();

        ClusterBatchReport {
            results,
            machines: stats,
            coordinator_seconds,
            modeled_network_seconds: self.network.receive_seconds(total_bytes, machines),
            wall_seconds: t_round.elapsed_seconds(),
        }
    }

    /// [`Cluster::try_query_many`] over the real wire. Faults here are
    /// *real* (worker crashes, timeouts), not scripted: the active
    /// [`FaultPlan`] is ignored, a machine that exhausted its restarts is
    /// reported unanswered (no local fallback — the serving layer's
    /// degrade path owns that decision), and `modeled_fault_seconds`
    /// stays `0.0` because nothing about the delay was modeled.
    fn try_query_many_socket<I: DistributedQueryable>(
        &self,
        sock: &SocketCluster,
        index: &I,
        sources: &[NodeId],
    ) -> ResilientBatchReport {
        let t_round = Stopwatch::start();
        let round = self.round.fetch_add(1, Ordering::Relaxed);
        let replies = sock.round(sources, &self.resilience);
        let mut per_machine: Vec<Option<Vec<SparseVector>>> = Vec::with_capacity(replies.len());
        let mut stats: Vec<MachineStats> = Vec::with_capacity(replies.len());
        let mut outcomes: Vec<MachineOutcome> = Vec::with_capacity(replies.len());
        for reply in replies {
            match reply {
                Some(r) => {
                    let entries: usize = r.vectors.iter().map(SparseVector::nnz).sum();
                    stats.push(MachineStats {
                        compute_seconds: r.compute_seconds,
                        bytes_sent: r.frame_bytes,
                        entries,
                    });
                    outcomes.push(MachineOutcome {
                        answered: true,
                        attempts: r.attempts,
                        hedged: false,
                        reply_seconds: self.resilience.modeled_service_seconds(entries)
                            + self.network.one_way_seconds(r.frame_bytes),
                    });
                    per_machine.push(Some(r.vectors));
                }
                None => {
                    stats.push(MachineStats {
                        compute_seconds: 0.0,
                        bytes_sent: 0,
                        entries: 0,
                    });
                    outcomes.push(MachineOutcome {
                        answered: false,
                        attempts: self.resilience.max_attempts.max(1),
                        hedged: false,
                        reply_seconds: 0.0,
                    });
                    per_machine.push(None);
                }
            }
        }
        let delivered_bytes: u64 = stats.iter().map(|s| s.bytes_sent).sum();
        let answered = outcomes.iter().filter(|o| o.answered).count();

        let t = Stopwatch::start();
        let mut scratch = Scratch::with_len(index.node_count());
        let mut results = Vec::with_capacity(sources.len());
        for qi in 0..sources.len() {
            for vs in per_machine.iter().flatten() {
                scratch.scatter(&vs[qi], 1.0);
            }
            results.push(scratch.harvest());
        }
        let coordinator_seconds = t.elapsed_seconds();

        ResilientBatchReport {
            results,
            outcome: FanoutOutcome {
                round,
                machines: outcomes,
            },
            machines: stats,
            coordinator_seconds,
            modeled_network_seconds: self.network.receive_seconds(delivered_bytes, answered),
            modeled_fault_seconds: 0.0,
            wall_seconds: t_round.elapsed_seconds(),
        }
    }
}

/// Everything measured for one batched fan-out round
/// ([`Cluster::query_many`]): the serving-path analogue of
/// [`ClusterQueryReport`], with one result per requested source and the
/// round's costs amortized over the whole batch.
#[derive(Clone, Debug)]
pub struct ClusterBatchReport {
    /// Exact PPVs, parallel to the requested sources.
    pub results: Vec<SparseVector>,
    /// Per-machine records covering the entire batch.
    pub machines: Vec<MachineStats>,
    /// Seconds the coordinator spent summing all replies (real).
    pub coordinator_seconds: f64,
    /// Modeled wire time for the single batched communication round.
    pub modeled_network_seconds: f64,
    /// Real elapsed seconds of the whole batched round in this process
    /// (see [`ClusterQueryReport::wall_seconds`]).
    pub wall_seconds: f64,
}

impl ClusterBatchReport {
    /// Batch runtime under the paper's metric: max machine compute +
    /// coordinator aggregation (one round for the whole batch).
    pub fn runtime_seconds(&self) -> f64 {
        self.machines
            .iter()
            .map(|m| m.compute_seconds)
            .fold(0.0, f64::max)
            + self.coordinator_seconds
    }

    /// Total bytes the coordinator received for the batch.
    pub fn total_bytes(&self) -> u64 {
        self.machines.iter().map(|m| m.bytes_sent).sum()
    }
}

/// Everything measured for one *resilient* batched fan-out round
/// ([`Cluster::try_query_many`]): a [`ClusterBatchReport`] plus the
/// [`FanoutOutcome`] saying which machines answered and how much modeled
/// delay the fault plan added.
#[derive(Clone, Debug)]
pub struct ResilientBatchReport {
    /// Per-source sums over the machines that answered, in machine
    /// order. Exact PPVs iff [`FanoutOutcome::complete`]; partial sums
    /// otherwise (the serving layer must not treat them as answers).
    pub results: Vec<SparseVector>,
    /// Which machines answered, with their modeled delivery timelines.
    pub outcome: FanoutOutcome,
    /// Per-machine compute/traffic records for the whole batch (every
    /// machine computed, whether or not its reply was delivered).
    pub machines: Vec<MachineStats>,
    /// Seconds the coordinator spent summing delivered replies (real).
    pub coordinator_seconds: f64,
    /// Modeled wire time for the *delivered* bytes of the round.
    pub modeled_network_seconds: f64,
    /// Extra modeled delay attributable to the fault plan (deadline
    /// waits, backoff, straggling) beyond a fault-free round. Exactly
    /// `0.0` when the plan is empty.
    pub modeled_fault_seconds: f64,
    /// Real elapsed seconds of the whole round in this process.
    pub wall_seconds: f64,
}

impl ResilientBatchReport {
    /// Did every machine answer (making `results` exact PPVs)?
    pub fn complete(&self) -> bool {
        self.outcome.complete()
    }

    /// Bytes that actually reached the coordinator.
    pub fn delivered_bytes(&self) -> u64 {
        self.machines
            .iter()
            .zip(&self.outcome.machines)
            .filter(|(_, o)| o.answered)
            .map(|(s, _)| s.bytes_sent)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_core::gpa::{GpaBuildOptions, GpaIndex};
    use ppr_core::hgpa::{HgpaBuildOptions, HgpaIndex};
    use ppr_core::PprConfig;
    use ppr_graph::generators::{hierarchical_sbm, HsbmConfig};
    use ppr_graph::CsrGraph;
    use ppr_partition::HierarchyConfig;

    fn sample() -> CsrGraph {
        hierarchical_sbm(
            &HsbmConfig {
                nodes: 250,
                depth: 4,
                locality: 0.9,
                ..Default::default()
            },
            42,
        )
    }

    fn cfg() -> PprConfig {
        PprConfig {
            epsilon: 1e-8,
            ..Default::default()
        }
    }

    #[test]
    fn cluster_query_equals_centralized_hgpa() {
        let g = sample();
        let idx = HgpaIndex::build(
            &g,
            &cfg(),
            &HgpaBuildOptions {
                machines: 4,
                hierarchy: HierarchyConfig {
                    max_leaf_size: 16,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let cluster = Cluster::with_default_network();
        for u in [0u32, 100, 249] {
            let report = cluster.query(&idx, u);
            let central = idx.query(u);
            assert_eq!(report.machines.len(), 4);
            for v in 0..250u32 {
                assert!(
                    (report.result.get(v) - central.get(v)).abs() < 1e-12,
                    "u {u} v {v}"
                );
            }
        }
    }

    #[test]
    fn cluster_query_equals_centralized_gpa() {
        let g = sample();
        let idx = GpaIndex::build(
            &g,
            &cfg(),
            &GpaBuildOptions {
                machines: 3,
                ..Default::default()
            },
        );
        let cluster = Cluster::with_default_network();
        let report = cluster.query(&idx, 77);
        let central = idx.query(77);
        for v in 0..250u32 {
            assert!((report.result.get(v) - central.get(v)).abs() < 1e-12);
        }
    }

    #[test]
    fn communication_counts_are_positive_and_bounded() {
        let g = sample();
        let idx = HgpaIndex::build(
            &g,
            &cfg(),
            &HgpaBuildOptions {
                machines: 5,
                ..Default::default()
            },
        );
        let cluster = Cluster::with_default_network();
        let report = cluster.query(&idx, 10);
        let total = report.total_bytes();
        assert!(total > 0);
        // Theorem 4: O(n|V|) — each machine ships at most a |V|-vector
        // (frame envelope + ≤10 bytes/entry is under the old 12-byte/
        // entry budget for any nontrivial vector).
        assert!(total <= 5 * (8 + 12 * 250));
        assert!(report.modeled_network_seconds > 0.0);
        assert!(report.runtime_seconds() > 0.0);
    }

    #[test]
    fn more_machines_more_total_bytes() {
        // Figure 13's trend: communication grows with machine count.
        let g = sample();
        let cluster = Cluster::with_default_network();
        let mut last = 0u64;
        for machines in [2usize, 6, 10] {
            let idx = HgpaIndex::build(
                &g,
                &cfg(),
                &HgpaBuildOptions {
                    machines,
                    hierarchy: HierarchyConfig {
                        max_leaf_size: 16,
                        ..Default::default()
                    },
                    ..Default::default()
                },
            );
            // Average over a few queries for stability.
            let total: u64 = [5u32, 50, 150]
                .iter()
                .map(|&u| cluster.query(&idx, u).total_bytes())
                .sum();
            assert!(total >= last, "bytes should not shrink with machines");
            last = total;
        }
    }

    #[test]
    fn query_many_matches_per_query_fanout() {
        let g = sample();
        let cluster = Cluster::with_default_network();
        let sources = [0u32, 42, 100, 249];
        for machines in [1usize, 4] {
            let idx = HgpaIndex::build(
                &g,
                &cfg(),
                &HgpaBuildOptions {
                    machines,
                    hierarchy: HierarchyConfig {
                        max_leaf_size: 16,
                        ..Default::default()
                    },
                    ..Default::default()
                },
            );
            let batch = cluster.query_many(&idx, &sources);
            assert_eq!(batch.results.len(), sources.len());
            assert_eq!(batch.machines.len(), machines);
            assert!(batch.total_bytes() > 0);
            assert!(batch.runtime_seconds() > 0.0);
            for (i, &u) in sources.iter().enumerate() {
                let single = cluster.query(&idx, u).result;
                for v in 0..250u32 {
                    assert!(
                        (batch.results[i].get(v) - single.get(v)).abs() < 1e-12,
                        "machines {machines} u {u} v {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn query_many_single_message_per_machine() {
        // The batched round ships the same vectors as per-query rounds
        // but in one *frame* per machine, so the batch saves exactly one
        // frame envelope (header + round/machine/compute fields + the
        // vector-count varint) per machine per extra query. With 2
        // queries over 3 machines that's 3 envelopes of 13+8+4+8+1
        // bytes; the vector payloads themselves are byte-identical.
        let g = sample();
        let idx = GpaIndex::build(
            &g,
            &cfg(),
            &GpaBuildOptions {
                machines: 3,
                ..Default::default()
            },
        );
        let cluster = Cluster::with_default_network();
        let sources = [7u32, 90];
        let batch = cluster.query_many(&idx, &sources);
        let per_query: u64 = sources
            .iter()
            .map(|&u| cluster.query(&idx, u).total_bytes())
            .sum();
        assert!(batch.total_bytes() < per_query);
        assert_eq!(per_query - batch.total_bytes(), 3 * (13 + 8 + 4 + 8 + 1));
        let per_round_latency: f64 = sources
            .iter()
            .map(|&u| cluster.query(&idx, u).modeled_network_seconds)
            .sum();
        assert!(batch.modeled_network_seconds < per_round_latency);
    }

    #[test]
    fn threaded_fanout_is_bit_identical_to_sequential() {
        let g = sample();
        let idx = HgpaIndex::build(
            &g,
            &cfg(),
            &HgpaBuildOptions {
                machines: 5,
                hierarchy: HierarchyConfig {
                    max_leaf_size: 16,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let sequential = Cluster::with_default_network();
        assert_eq!(sequential.parallelism(), ParallelismMode::Sequential);
        // Worker counts below, at, and above the machine count.
        for workers in [2usize, 5, 9] {
            let threaded = Cluster::new(ClusterConfig {
                parallelism: ParallelismMode::Threads(workers),
                ..ClusterConfig::default()
            });
            let sources = [0u32, 42, 100, 249];
            let a = sequential.query_many(&idx, &sources);
            let b = threaded.query_many(&idx, &sources);
            assert_eq!(a.results, b.results, "workers {workers}");
            assert_eq!(a.total_bytes(), b.total_bytes());
            assert!(b.wall_seconds > 0.0);
            let pref = [(3u32, 0.25), (200u32, 0.75)];
            assert_eq!(
                sequential.query_preference(&idx, &pref).result,
                threaded.query_preference(&idx, &pref).result,
                "workers {workers}"
            );
        }
    }

    #[test]
    fn wall_clock_is_reported_alongside_modeled_runtime() {
        let g = sample();
        let idx = GpaIndex::build(&g, &cfg(), &GpaBuildOptions::default());
        let cluster = Cluster::with_default_network();
        let report = cluster.query(&idx, 11);
        // Sequentially, the whole round's wall clock dominates any single
        // machine's measured time; both numbers coexist in the report.
        assert!(report.wall_seconds >= report.max_machine_seconds());
        assert!(report.runtime_seconds() > 0.0);
    }

    #[test]
    fn batch_runs_all_queries() {
        let g = sample();
        let idx = GpaIndex::build(&g, &cfg(), &GpaBuildOptions::default());
        let cluster = Cluster::new(ClusterConfig::default());
        let reports = cluster.query_batch(&idx, &[1, 2, 3]);
        assert_eq!(reports.len(), 3);
        for r in reports {
            assert!(!r.result.is_empty());
        }
    }

    fn hgpa_idx(machines: usize) -> HgpaIndex {
        HgpaIndex::build(
            &sample(),
            &cfg(),
            &HgpaBuildOptions {
                machines,
                hierarchy: HierarchyConfig {
                    max_leaf_size: 16,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
    }

    #[test]
    fn resilient_fanout_with_empty_plan_is_bit_identical() {
        let idx = hgpa_idx(4);
        let cluster = Cluster::with_default_network();
        let sources = [0u32, 42, 100, 249];
        let plain = cluster.query_many(&idx, &sources);
        let resilient = cluster.try_query_many(&idx, &sources);
        assert!(resilient.complete());
        assert_eq!(plain.results, resilient.results);
        assert_eq!(plain.total_bytes(), resilient.delivered_bytes());
        assert_eq!(
            plain.modeled_network_seconds,
            resilient.modeled_network_seconds
        );
        assert_eq!(resilient.modeled_fault_seconds, 0.0);
        for o in &resilient.outcome.machines {
            assert!(o.answered);
            assert_eq!(o.attempts, 1);
            assert!(!o.hedged);
        }
        // Rounds advance per resilient call only.
        assert_eq!(cluster.rounds_started(), 1);
        cluster.query_many(&idx, &sources);
        assert_eq!(cluster.rounds_started(), 1);
    }

    #[test]
    fn failed_machine_is_reported_missing_and_excluded_from_sums() {
        let idx = hgpa_idx(4);
        let exact = Cluster::with_default_network().query_many(&idx, &[42u32]);
        let cluster = Cluster::with_faults(
            ClusterConfig::default(),
            FaultPlan::empty().fail(2, 0, 100),
            ResilienceConfig::default(),
        );
        let r = cluster.try_query_many(&idx, &[42u32]);
        assert!(!r.complete());
        assert_eq!(r.outcome.missing(), vec![2]);
        assert!(r.modeled_fault_seconds > 0.0);
        assert!(r.delivered_bytes() < exact.total_bytes());
        // The partial sum is machine 2's share short of the exact PPV.
        let partial_mass: f64 = (0..250u32).map(|v| r.results[0].get(v)).sum();
        let exact_mass: f64 = (0..250u32).map(|v| exact.results[0].get(v)).sum();
        assert!(partial_mass < exact_mass);
    }

    #[test]
    fn transient_drops_are_rescued_by_retries() {
        let idx = hgpa_idx(4);
        let exact = Cluster::with_default_network().query_many(&idx, &[7u32, 200]);
        let cluster = Cluster::with_faults(
            ClusterConfig::default(),
            FaultPlan::empty().with_drops(0.2, 1234),
            ResilienceConfig {
                max_attempts: 6,
                ..ResilienceConfig::default()
            },
        );
        // At 20% per-attempt drops, 6 attempts exhaust with P = 0.2^6 per
        // delivery — across 80 deliveries nearly every round completes,
        // and any complete round must reproduce the exact sums bit for
        // bit. First-attempt drops (P = 0.2 each) make retries all but
        // certain somewhere in the run.
        let mut complete_rounds = 0usize;
        let mut retried = false;
        for _ in 0..20 {
            let r = cluster.try_query_many(&idx, &[7u32, 200]);
            if r.complete() {
                complete_rounds += 1;
                assert_eq!(r.results, exact.results);
                assert_eq!(r.delivered_bytes(), exact.total_bytes());
            }
            retried |= r.outcome.machines.iter().any(|o| o.attempts > 1);
        }
        assert!(complete_rounds >= 15, "only {complete_rounds}/20 complete");
        assert!(retried, "20% drops over 80 deliveries must retry at least once");
    }

    #[test]
    fn straggler_is_hedged_and_cheaper_than_unhedged() {
        let idx = hgpa_idx(4);
        let plan = || FaultPlan::empty().slow(1, 64.0);
        let hedged = Cluster::with_faults(
            ClusterConfig::default(),
            plan(),
            ResilienceConfig::default(),
        );
        let r = hedged.try_query_many(&idx, &[42u32]);
        assert!(r.complete());
        assert!(r.outcome.machines[1].hedged);
        let unhedged = Cluster::with_faults(
            ClusterConfig::default(),
            plan(),
            ResilienceConfig {
                hedge_after_factor: None,
                ..ResilienceConfig::default()
            },
        );
        let u = unhedged.try_query_many(&idx, &[42u32]);
        assert!(
            r.modeled_fault_seconds < u.modeled_fault_seconds,
            "hedging must cut the straggler's modeled delay ({} vs {})",
            r.modeled_fault_seconds,
            u.modeled_fault_seconds
        );
        // Both still deliver the exact sums: hedged replies are the same
        // bits, and a straggler past every deadline is simply excluded.
        assert_eq!(
            r.results,
            Cluster::with_default_network().query_many(&idx, &[42u32]).results
        );
    }
}
