#![deny(missing_docs)]

//! Simulated coordinator-based share-nothing cluster.
//!
//! The paper's testbed is 10 physical machines behind a 100 Mbps switch
//! (§6.1), plus EC2 at 1500 processors for Appendix B. This crate stands
//! in for that hardware: each *machine* is an isolated executor owning its
//! shard of
//! the precomputed index (machines run sequentially and are timed
//! individually, so per-machine cost reflects dedicated hardware even on a
//! single-core host), the *coordinator* gathers one vector per machine
//! per query (exactly the paper's single communication round), and the
//! [`NetworkModel`] converts the byte-accurate traffic counts into modeled
//! wire time so experiments can report both real compute cost and modeled
//! end-to-end latency.
//!
//! What is real vs modeled:
//! * per-machine compute time — **real** (each machine's work measured in
//!   isolation);
//! * bytes shipped machine → coordinator — **real counts** of the same
//!   sparse vectors the paper serializes;
//! * wire latency/bandwidth — **modeled** (the simulator runs in one
//!   process); the default model matches the paper's switch.

pub mod exec;
pub mod network;

pub use exec::{
    Cluster, ClusterBatchReport, ClusterQueryReport, DistributedQueryable, MachineStats,
};
pub use network::NetworkModel;

/// How the simulated machines of a fan-out round execute.
///
/// Results are **bit-identical** across modes: every machine computes its
/// reply in isolation from read-only state and the coordinator always
/// sums replies in machine order, so the mode only changes *when* each
/// reply is computed, never what it contains (pinned by
/// `tests/concurrent_serving.rs`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParallelismMode {
    /// Machines run one after another in the caller's thread. This is the
    /// paper-accurate measurement mode: on a shared (possibly
    /// single-core) host it is the only way a machine's measured compute
    /// time reflects what a dedicated machine would spend, so the figure
    /// experiments use it.
    Sequential,
    /// Machines run on scoped worker threads, at most this many at once
    /// (machines are dealt to workers round-robin). This is the serving
    /// mode: wall-clock fan-out time approaches the slowest machine on a
    /// host with enough cores. Per-machine measured times remain recorded
    /// but may be inflated by core contention when workers exceed cores.
    Threads(usize),
}

impl ParallelismMode {
    /// The mode the environment asks for. `PPR_TEST_THREADS` (also the
    /// knob the CI matrix sweeps) wins: `1` means [`Sequential`], `N > 1`
    /// means [`Threads(N)`]. Unset, the host decides:
    /// [`std::thread::available_parallelism`] cores, sequential on a
    /// single-core machine.
    ///
    /// [`Sequential`]: ParallelismMode::Sequential
    /// [`Threads(N)`]: ParallelismMode::Threads
    pub fn from_env() -> Self {
        let workers = std::env::var("PPR_TEST_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, |p| p.get())
            });
        Self::with_workers(workers)
    }

    /// [`Sequential`](ParallelismMode::Sequential) for `workers <= 1`,
    /// [`Threads`](ParallelismMode::Threads) otherwise.
    pub fn with_workers(workers: usize) -> Self {
        if workers <= 1 {
            ParallelismMode::Sequential
        } else {
            ParallelismMode::Threads(workers)
        }
    }

    /// Number of concurrent workers this mode permits.
    pub fn workers(self) -> usize {
        match self {
            ParallelismMode::Sequential => 1,
            ParallelismMode::Threads(w) => w.max(1),
        }
    }

    /// True when work may run on more than one thread.
    pub fn is_parallel(self) -> bool {
        self.workers() > 1
    }
}

impl Default for ParallelismMode {
    /// Sequential — the paper-accurate measurement mode. Serving layers
    /// opt into threads via [`ParallelismMode::from_env`] or explicitly.
    fn default() -> Self {
        ParallelismMode::Sequential
    }
}

/// Cluster-wide configuration.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Number of machines (excluding the coordinator).
    pub machines: usize,
    /// Network model for modeled wire time.
    pub network: NetworkModel,
    /// How machine replies are computed within a fan-out round.
    pub parallelism: ParallelismMode,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            machines: 6, // the paper's default (§6.1)
            network: NetworkModel::default(),
            parallelism: ParallelismMode::default(),
        }
    }
}
