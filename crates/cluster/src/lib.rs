#![deny(missing_docs)]

//! Simulated coordinator-based share-nothing cluster.
//!
//! The paper's testbed is 10 physical machines behind a 100 Mbps switch
//! (§6.1), plus EC2 at 1500 processors for Appendix B. This crate stands
//! in for that hardware: each *machine* is an isolated executor owning its
//! shard of
//! the precomputed index (machines run sequentially and are timed
//! individually, so per-machine cost reflects dedicated hardware even on a
//! single-core host), the *coordinator* gathers one vector per machine
//! per query (exactly the paper's single communication round), and the
//! [`NetworkModel`] converts the byte-accurate traffic counts into modeled
//! wire time so experiments can report both real compute cost and modeled
//! end-to-end latency.
//!
//! What is real vs modeled:
//! * per-machine compute time — **real** (each machine's work measured in
//!   isolation);
//! * bytes shipped machine → coordinator — **real counts** of the same
//!   sparse vectors the paper serializes;
//! * wire latency/bandwidth — **modeled** (the simulator runs in one
//!   process); the default model matches the paper's switch.

pub mod exec;
pub mod fault;
pub mod network;
pub mod socket;

pub use exec::{
    Cluster, ClusterBatchReport, ClusterQueryReport, DistributedQueryable, MachineStats,
    ResilientBatchReport,
};
pub use fault::{Fault, FanoutOutcome, FaultPlan, MachineOutcome, ResilienceConfig};
pub use network::NetworkModel;
pub use socket::{MachineReply, SocketCluster, SocketConfig, SupervisorStats};
// Measured-traffic counters travel with the socket supervisor
// ([`SocketCluster::metrics`]); re-exported so callers reporting wire
// totals need not depend on `ppr-wire` directly.
pub use ppr_wire::WireMetrics;
// `ParallelismMode` moved to `ppr-core::parallel` so the offline build
// paths can share the same switch (this crate depends on core, not the
// other way around); re-exported here so existing
// `ppr_cluster::ParallelismMode` imports keep working unchanged.
pub use ppr_core::parallel::ParallelismMode;

/// Cluster-wide configuration.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Number of machines (excluding the coordinator).
    pub machines: usize,
    /// Network model for modeled wire time.
    pub network: NetworkModel,
    /// How machine replies are computed within a fan-out round.
    pub parallelism: ParallelismMode,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            machines: 6, // the paper's default (§6.1)
            network: NetworkModel::default(),
            parallelism: ParallelismMode::default(),
        }
    }
}
