//! Real multi-process cluster transport: worker processes on localhost
//! TCP, supervised by the coordinator.
//!
//! The modeled transport ([`crate::exec`]) runs every machine inside the
//! coordinator's process and *models* the wire; this module is the same
//! cluster with the wire made real. Each machine is an OS process (see
//! `ppr-serve::worker`) that cold-starts from the persisted `.pprx`
//! snapshot, connects back to the coordinator, and answers
//! [`Message::Request`] fan-outs with [`Message::Reply`] frames.
//!
//! Supervision contract:
//!
//! * every socket operation carries a deadline ([`FramedStream`]); a
//!   wedged or killed worker costs one timeout, never a hang;
//! * a worker that errors mid-round (timeout, EOF after `kill -9`,
//!   corrupt frame) is killed, respawned from the **current** snapshot,
//!   re-`Welcome`d at the current epoch, and the request is re-sent —
//!   bounded by [`ResilienceConfig::max_attempts`];
//! * a machine that exhausts its attempts yields `None` for the round,
//!   which the caller treats exactly like a modeled dropped reply
//!   (partial sums discarded, degrade path — never a wrong answer);
//! * epoch barriers ([`SocketCluster::publish_epoch`]) persist the new
//!   snapshot **before** broadcasting the delta, so a worker that dies at
//!   any point rejoins consistently: either it acked the delta (replica
//!   advanced) or it restarts from the post-delta snapshot.
//!
//! Bit-identity holds because workers compute the same
//! `machine_vectors_into` shares from the same snapshot, replies carry
//! raw `f64` bits, and the coordinator sums in machine order — the same
//! arithmetic as the modeled path, pinned in `tests/socket_cluster.rs`.

use crate::fault::ResilienceConfig;
use ppr_core::hgpa::HgpaIndex;
use ppr_core::parallel::Stopwatch;
use ppr_core::persist;
use ppr_core::SparseVector;
use ppr_graph::{CsrGraph, GraphDelta, NodeId};
use ppr_wire::{FramedStream, Message, WireMetrics, DEFAULT_MAX_FRAME_BYTES, PROTOCOL_VERSION};
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Mutex;
use std::time::Duration;

/// Configuration of one multi-process cluster.
#[derive(Clone, Debug)]
pub struct SocketConfig {
    /// Number of worker processes (= machines the index was built for).
    pub machines: usize,
    /// Command line (`argv[0]` + args) that starts one worker process.
    /// Per-worker identity travels in `PPR_WORKER_*` environment
    /// variables, so every worker runs the same command.
    pub worker_command: Vec<String>,
    /// Path of the persisted `.pprx` snapshot workers cold-start from.
    /// Rewritten (atomically) at every epoch barrier.
    pub index_path: PathBuf,
    /// Per-operation socket deadline for request/reply traffic.
    pub io_deadline: Duration,
    /// Deadline for a spawned worker to connect back and say `Hello`.
    pub handshake_deadline: Duration,
    /// Deadline for a worker to apply an epoch delta and ack it
    /// (index maintenance can far outlast a request round-trip).
    pub update_deadline: Duration,
    /// Heartbeat sweep interval: at most once per interval, rounds
    /// ping every worker and eagerly respawn dead ones.
    pub heartbeat: Duration,
    /// Per-frame byte budget (anti-OOM bound on the length field).
    pub max_frame_bytes: u64,
    /// Per-worker `PPR_WORKER_CHAOS` values for fault-injection tests
    /// (empty string = no chaos). Missing entries default to none.
    pub chaos: Vec<String>,
}

impl SocketConfig {
    /// A config with production-shaped deadlines; `worker_command` runs
    /// one worker and `index_path` is where snapshots live.
    pub fn new(machines: usize, worker_command: Vec<String>, index_path: PathBuf) -> Self {
        Self {
            machines,
            worker_command,
            index_path,
            io_deadline: Duration::from_secs(10),
            handshake_deadline: Duration::from_secs(20),
            update_deadline: Duration::from_secs(60),
            heartbeat: Duration::from_millis(500),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            chaos: Vec::new(),
        }
    }
}

/// One machine's answer to one fan-out round over the real wire.
#[derive(Clone, Debug)]
pub struct MachineReply {
    /// Reply vectors, one per requested source (exactly one for a
    /// preference round) — the same shares the modeled transport
    /// computes in-process.
    pub vectors: Vec<SparseVector>,
    /// Seconds the worker measured for its compute (shipped in the
    /// reply frame).
    pub compute_seconds: f64,
    /// Measured on-wire size of the reply frame. Equal by construction
    /// to [`ppr_wire::reply_frame_bytes`] of `vectors` — the shared
    /// formula both byte columns use.
    pub frame_bytes: u64,
    /// Request attempts this round (1 = first try answered).
    pub attempts: u32,
}

/// Counters describing the supervisor's life so far.
#[derive(Clone, Copy, Debug, Default)]
pub struct SupervisorStats {
    /// Worker processes respawned after a crash or timeout (initial
    /// launches not counted).
    pub restarts: u64,
    /// Spawn or handshake attempts that failed outright.
    pub spawn_failures: u64,
    /// Heartbeat sweeps run.
    pub sweeps: u64,
    /// Fan-out rounds driven over the wire.
    pub rounds: u64,
}

struct Worker {
    child: Child,
    stream: FramedStream,
}

impl Drop for Worker {
    fn drop(&mut self) {
        // Backstop against orphans: the graceful path (Shutdown frame)
        // has already run if it was going to.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

struct SocketState {
    config: SocketConfig,
    listener: TcpListener,
    addr: SocketAddr,
    /// Current graph, shipped in `Welcome` to (re)joining workers.
    graph: CsrGraph,
    /// Decode bound for incoming ids; tracks the current graph.
    node_bound: u64,
    epoch: u64,
    /// Round sequence number used to match replies to requests.
    seq: u64,
    ping_seq: u64,
    workers: Vec<Option<Worker>>,
    /// Metrics absorbed from dead workers' streams; live streams are
    /// added on read.
    metrics: WireMetrics,
    stats: SupervisorStats,
    last_sweep: Stopwatch,
}

/// Supervisor for a cluster of real worker processes. Cheap to share:
/// all state sits behind one mutex, and every method takes `&self`.
pub struct SocketCluster {
    inner: Mutex<SocketState>,
}

impl SocketCluster {
    /// Persist `index` to `config.index_path`, spawn one worker process
    /// per machine, and complete the `Hello`/`Welcome` handshake with
    /// each at `epoch`.
    ///
    /// # Errors
    /// Snapshot write, bind, spawn, or handshake failures; any spawned
    /// children are killed before returning.
    pub fn launch(
        config: SocketConfig,
        index: &HgpaIndex,
        graph: &CsrGraph,
        epoch: u64,
    ) -> io::Result<Self> {
        if config.machines == 0 || config.machines != index.machines() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "socket cluster wants {} machines but the index was built for {}",
                    config.machines,
                    index.machines()
                ),
            ));
        }
        save_snapshot(&config.index_path, index)?;
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let machines = config.machines;
        let mut state = SocketState {
            config,
            listener,
            addr,
            graph: graph.clone(),
            node_bound: graph.node_count() as u64,
            epoch,
            seq: 0,
            ping_seq: 0,
            workers: (0..machines).map(|_| None).collect(),
            metrics: WireMetrics::default(),
            stats: SupervisorStats::default(),
            last_sweep: Stopwatch::start(),
        };
        for m in 0..machines {
            state.spawn_worker(m, true)?;
        }
        Ok(Self {
            inner: Mutex::new(state),
        })
    }

    fn state(&self) -> std::sync::MutexGuard<'_, SocketState> {
        match self.inner.lock() {
            Ok(g) => g,
            // A panicking round leaves no half-written protocol state the
            // next round can't recover from (errors kill + respawn the
            // worker), so poisoning is survivable.
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Number of worker processes.
    pub fn machines(&self) -> usize {
        self.state().config.machines
    }

    /// Epoch the cluster last published.
    pub fn epoch(&self) -> u64 {
        self.state().epoch
    }

    /// The coordinator's listening address (workers connect back to it).
    pub fn addr(&self) -> SocketAddr {
        self.state().addr
    }

    /// Supervisor counters.
    pub fn supervisor_stats(&self) -> SupervisorStats {
        self.state().stats
    }

    /// Cumulative measured wire traffic, live streams included.
    pub fn metrics(&self) -> WireMetrics {
        let st = self.state();
        let mut total = st.metrics;
        for w in st.workers.iter().flatten() {
            total.absorb(w.stream.metrics());
        }
        total
    }

    /// OS pids of the live workers (`None` for machines currently down)
    /// — the handle crash tests use to deliver a real `kill -9`.
    pub fn worker_pids(&self) -> Vec<Option<u32>> {
        self.state()
            .workers
            .iter()
            .map(|w| w.as_ref().map(|w| w.child.id()))
            .collect()
    }

    /// One batched fan-out round over the wire: every machine computes
    /// one reply vector per source. `None` entries are machines that
    /// exhausted `resilience.max_attempts` (crash + failed restarts) —
    /// the caller discards the round's partial sums for them exactly as
    /// it does for modeled dropped replies.
    pub fn round(
        &self,
        sources: &[NodeId],
        resilience: &ResilienceConfig,
    ) -> Vec<Option<MachineReply>> {
        self.state()
            .drive_round(RoundKind::Batch(sources), resilience.max_attempts.max(1))
    }

    /// One preference-set fan-out round: each machine folds the weighted
    /// set into a single reply vector.
    pub fn round_preference(
        &self,
        preference: &[(NodeId, f64)],
        resilience: &ResilienceConfig,
    ) -> Vec<Option<MachineReply>> {
        self.state().drive_round(
            RoundKind::Preference(preference),
            resilience.max_attempts.max(1),
        )
    }

    /// Publish one epoch barrier: persist the post-delta snapshot
    /// (atomically, **before** any worker hears about the delta), then
    /// broadcast the delta and collect acks. Workers that fail to ack
    /// are killed and will cold-start from the new snapshot at the next
    /// round — consistent either way. Returns the number of acks.
    ///
    /// # Errors
    /// Only the snapshot write can fail; on `Err` nothing was broadcast
    /// and the workers still serve the previous epoch, so the caller
    /// must stop routing queries here (detach) or retry the publish.
    pub fn publish_epoch(
        &self,
        index: &HgpaIndex,
        graph: &CsrGraph,
        delta: &GraphDelta,
        epoch: u64,
    ) -> io::Result<usize> {
        let mut st = self.state();
        save_snapshot(&st.config.index_path, index)?;
        st.graph = graph.clone();
        st.node_bound = graph.node_count() as u64;
        st.epoch = epoch;
        let mut acks = 0usize;
        for m in 0..st.config.machines {
            if st.workers[m].is_none() {
                continue; // will cold-start from the new snapshot
            }
            let update = Message::Update {
                epoch,
                delta: delta.clone(),
            };
            let node_bound = st.node_bound;
            let acked = st
                .with_worker(m, |w, deadlines| {
                    w.stream.set_deadline(deadlines.update_deadline);
                    w.stream.send(&update)?;
                    let (msg, _) = w.stream.recv(node_bound)?;
                    w.stream.set_deadline(deadlines.io_deadline);
                    match msg {
                        Message::UpdateAck {
                            epoch: e,
                            machine,
                        } if e == epoch && machine as usize == m => Ok(()),
                        other => Err(protocol_err(m, "UpdateAck", &other)),
                    }
                })
                .is_ok();
            if acked {
                acks += 1;
            } else {
                st.kill(m);
            }
        }
        Ok(acks)
    }

    /// Run one heartbeat sweep now (rounds also sweep when the interval
    /// elapses): reap exited children, ping the rest, respawn the dead.
    /// Returns how many workers were respawned.
    pub fn sweep(&self) -> usize {
        self.state().sweep_now()
    }

    /// Gracefully stop every worker (Shutdown frame, then kill as the
    /// backstop via `Worker`'s `Drop`).
    pub fn shutdown(&self) {
        let mut st = self.state();
        for m in 0..st.config.machines {
            if st.workers[m].is_some() {
                let _ = st.with_worker(m, |w, _| w.stream.send(&Message::Shutdown).map(|_| ()));
                st.kill(m);
            }
        }
    }
}

impl Drop for SocketCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// What one round asks every machine to compute.
#[derive(Clone, Copy)]
enum RoundKind<'a> {
    Batch(&'a [NodeId]),
    Preference(&'a [(NodeId, f64)]),
}

impl RoundKind<'_> {
    fn message(&self, round: u64) -> Message {
        match self {
            RoundKind::Batch(sources) => Message::Request {
                round,
                sources: sources.to_vec(),
            },
            RoundKind::Preference(pairs) => Message::RequestPref {
                round,
                pairs: pairs.to_vec(),
            },
        }
    }

    fn expected_vectors(&self) -> usize {
        match self {
            RoundKind::Batch(sources) => sources.len(),
            RoundKind::Preference(_) => 1,
        }
    }
}

/// Deadline pair handed to per-worker closures (borrowed out of the
/// config so the closure can hold `&mut Worker` at the same time).
#[derive(Clone, Copy)]
struct Deadlines {
    io_deadline: Duration,
    update_deadline: Duration,
}

impl SocketState {
    /// Run `f` against worker `m`'s connection. The worker must exist.
    fn with_worker<T>(
        &mut self,
        m: usize,
        f: impl FnOnce(&mut Worker, Deadlines) -> io::Result<T>,
    ) -> io::Result<T> {
        let deadlines = Deadlines {
            io_deadline: self.config.io_deadline,
            update_deadline: self.config.update_deadline,
        };
        match self.workers[m].as_mut() {
            Some(w) => f(w, deadlines),
            None => Err(io::Error::new(
                io::ErrorKind::NotConnected,
                format!("machine {m} is down"),
            )),
        }
    }

    /// Kill worker `m` (if any), folding its stream counters into the
    /// cluster totals. `Worker`'s `Drop` reaps the process.
    fn kill(&mut self, m: usize) {
        if let Some(w) = self.workers[m].take() {
            self.metrics.absorb(w.stream.metrics());
        }
    }

    /// Spawn worker `m` and complete the handshake: accept its
    /// connection, read `Hello`, answer `Welcome` with the current graph
    /// and epoch. `initial` distinguishes launch from supervision
    /// restarts in the counters.
    fn spawn_worker(&mut self, m: usize, initial: bool) -> io::Result<()> {
        self.kill(m);
        let result = self.try_spawn(m);
        match result {
            Ok(worker) => {
                self.workers[m] = Some(worker);
                if !initial {
                    self.stats.restarts += 1;
                }
                Ok(())
            }
            Err(e) => {
                self.stats.spawn_failures += 1;
                Err(e)
            }
        }
    }

    fn try_spawn(&mut self, m: usize) -> io::Result<Worker> {
        let cmd = &self.config.worker_command;
        let program = cmd.first().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "empty worker command")
        })?;
        let chaos = self.config.chaos.get(m).cloned().unwrap_or_default();
        let mut child = Command::new(program)
            .args(&cmd[1..])
            .env("PPR_WORKER_MACHINE", m.to_string())
            .env("PPR_WORKER_ADDR", self.addr.to_string())
            .env("PPR_WORKER_INDEX", &self.config.index_path)
            .env("PPR_WORKER_CHAOS", chaos)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .spawn()?;
        match self.handshake(m, &mut child) {
            Ok(stream) => Ok(Worker { child, stream }),
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                Err(e)
            }
        }
    }

    /// Accept the connection for machine `m` and run the
    /// `Hello`/`Welcome` exchange. The listener is non-blocking; the
    /// loop polls with a sleep under `handshake_deadline`, so a worker
    /// that dies before connecting costs one deadline, not a hang.
    fn handshake(&mut self, m: usize, child: &mut Child) -> io::Result<FramedStream> {
        let t = Stopwatch::start();
        let stream = loop {
            match self.listener.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)?;
                    break s;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if child.try_wait()?.is_some() {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            format!("worker {m} exited before connecting"),
                        ));
                    }
                    if t.elapsed_seconds() > self.config.handshake_deadline.as_secs_f64() {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("worker {m} never connected"),
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(e),
            }
        };
        let mut fs = FramedStream::new(stream, self.config.io_deadline);
        fs.set_max_frame_bytes(self.config.max_frame_bytes);
        let (hello, _) = fs.recv(self.node_bound)?;
        match hello {
            Message::Hello { machine, proto }
                if machine as usize == m && proto == PROTOCOL_VERSION => {}
            other => return Err(protocol_err(m, "Hello", &other)),
        }
        fs.send(&Message::Welcome {
            epoch: self.epoch,
            graph: self.graph.clone(),
        })?;
        Ok(fs)
    }

    /// Make sure worker `m` is live, respawning it if necessary.
    fn ensure_worker(&mut self, m: usize) -> io::Result<()> {
        if self.workers[m].is_some() {
            return Ok(());
        }
        self.spawn_worker(m, false)
    }

    /// Receive worker `m`'s reply for round `round`, validating shape.
    /// Stray frames from earlier supervision traffic are skipped (a
    /// bounded number of times); anything else is a protocol error.
    fn recv_reply(&mut self, m: usize, round: u64, expected: usize) -> io::Result<MachineReply> {
        let node_bound = self.node_bound;
        self.with_worker(m, |w, _| {
            for _ in 0..4 {
                let (msg, frame_bytes) = w.stream.recv(node_bound)?;
                match msg {
                    Message::Reply {
                        round: r,
                        machine,
                        compute_seconds,
                        vectors,
                    } if r == round && machine as usize == m => {
                        if vectors.len() != expected {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!(
                                    "machine {m} sent {} vectors, expected {expected}",
                                    vectors.len()
                                ),
                            ));
                        }
                        return Ok(MachineReply {
                            vectors,
                            compute_seconds,
                            frame_bytes,
                            attempts: 0, // caller fills in
                        });
                    }
                    // Stale pong or an out-of-round reply from a
                    // connection we were about to recycle: skip.
                    Message::Pong { .. } | Message::Reply { .. } => continue,
                    other => return Err(protocol_err(m, "Reply", &other)),
                }
            }
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("machine {m} flooded the round with stray frames"),
            ))
        })
    }

    /// Drive one fan-out round: send to all live workers first (so their
    /// compute overlaps for real), then collect replies, then retry the
    /// missing machines — restart included — up to `max_attempts` each.
    fn drive_round(&mut self, kind: RoundKind<'_>, max_attempts: u32) -> Vec<Option<MachineReply>> {
        self.maybe_sweep();
        let round = self.seq;
        self.seq += 1;
        self.stats.rounds += 1;
        let machines = self.config.machines;
        let expected = kind.expected_vectors();
        let mut out: Vec<Option<MachineReply>> = (0..machines).map(|_| None).collect();
        let mut attempts = vec![0u32; machines];

        // Phase 1: fan the request out to every live machine.
        let mut in_flight = vec![false; machines];
        for m in 0..machines {
            if self.ensure_worker(m).is_err() {
                continue;
            }
            attempts[m] = 1;
            let msg = kind.message(round);
            match self.with_worker(m, |w, _| w.stream.send(&msg).map(|_| ())) {
                Ok(()) => in_flight[m] = true,
                Err(_) => self.kill(m),
            }
        }

        // Phase 2: collect the overlapped replies.
        for m in 0..machines {
            if !in_flight[m] {
                continue;
            }
            match self.recv_reply(m, round, expected) {
                Ok(mut r) => {
                    r.attempts = attempts[m];
                    out[m] = Some(r);
                }
                Err(_) => self.kill(m),
            }
        }

        // Phase 3: sequential retries for whoever is missing. Each
        // attempt is a full restart-from-snapshot + resend; a machine
        // that keeps dying stays `None` and the caller degrades.
        for m in 0..machines {
            while out[m].is_none() && attempts[m] < max_attempts {
                attempts[m] += 1;
                if self.ensure_worker(m).is_err() {
                    continue;
                }
                let msg = kind.message(round);
                if self
                    .with_worker(m, |w, _| w.stream.send(&msg).map(|_| ()))
                    .is_err()
                {
                    self.kill(m);
                    continue;
                }
                match self.recv_reply(m, round, expected) {
                    Ok(mut r) => {
                        r.attempts = attempts[m];
                        out[m] = Some(r);
                    }
                    Err(_) => self.kill(m),
                }
            }
        }
        out
    }

    /// Interval-gated heartbeat sweep (see [`SocketCluster::sweep`]).
    fn maybe_sweep(&mut self) {
        if self.last_sweep.elapsed_seconds() < self.config.heartbeat.as_secs_f64() {
            return;
        }
        self.sweep_now();
    }

    fn sweep_now(&mut self) -> usize {
        self.last_sweep = Stopwatch::start();
        self.stats.sweeps += 1;
        let machines = self.config.machines;
        let mut respawned = 0usize;
        for m in 0..machines {
            // Reap silently-exited children first: `kill -9` between
            // rounds surfaces here, not as a round error.
            let exited = match self.workers[m].as_mut() {
                Some(w) => !matches!(w.child.try_wait(), Ok(None)),
                None => false,
            };
            if exited {
                self.kill(m);
            }
            if self.workers[m].is_some() {
                let seq = self.ping_seq;
                self.ping_seq += 1;
                let node_bound = self.node_bound;
                let alive = self
                    .with_worker(m, |w, _| {
                        w.stream.send(&Message::Ping { seq })?;
                        let (msg, _) = w.stream.recv(node_bound)?;
                        match msg {
                            Message::Pong {
                                seq: s, machine, ..
                            } if s == seq && machine as usize == m => Ok(()),
                            other => Err(protocol_err(m, "Pong", &other)),
                        }
                    })
                    .is_ok();
                if !alive {
                    self.kill(m);
                }
            }
            if self.workers[m].is_none() && self.spawn_worker(m, false).is_ok() {
                respawned += 1;
            }
        }
        respawned
    }
}

impl Drop for SocketState {
    fn drop(&mut self) {
        // `Worker`'s own `Drop` kills and reaps each child.
        self.workers.clear();
    }
}

fn protocol_err(machine: usize, expected: &str, got: &Message) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("machine {machine}: expected {expected}, got {got:?}"),
    )
}

/// Write the snapshot atomically: a worker cold-starting concurrently
/// sees either the old file or the new one, never a torn write.
fn save_snapshot(path: &std::path::Path, index: &HgpaIndex) -> io::Result<()> {
    let tmp = path.with_extension("pprx.tmp");
    persist::save_hgpa_file(index, &tmp)?;
    std::fs::rename(&tmp, path)
}
