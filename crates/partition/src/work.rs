//! The weighted undirected working graph the multilevel partitioner runs on.
//!
//! Partitioning quality concerns *structure*, not edge direction, so the
//! directed input is symmetrised: an edge pair `u -> v`, `v -> u` becomes a
//! single undirected edge of weight 2. Node weights start at 1 and
//! accumulate under coarsening so balance constraints always refer to
//! counts of original nodes (the paper balances subgraph node counts).

use ppr_graph::{CsrGraph, NodeId};

/// Weighted undirected graph in CSR form with node weights.
#[derive(Clone, Debug)]
pub struct WorkGraph {
    /// CSR offsets, length `n + 1`.
    pub xadj: Vec<usize>,
    /// Neighbour lists.
    pub adjncy: Vec<NodeId>,
    /// Edge weights, parallel to `adjncy`.
    pub adjwgt: Vec<u32>,
    /// Node weights (number of original nodes a coarse node represents).
    pub vwgt: Vec<u32>,
}

impl WorkGraph {
    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.vwgt.len()
    }

    /// Neighbours of `v` with their edge weights.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, u32)> + '_ {
        let v = v as usize;
        self.adjncy[self.xadj[v]..self.xadj[v + 1]]
            .iter()
            .copied()
            .zip(self.adjwgt[self.xadj[v]..self.xadj[v + 1]].iter().copied())
    }

    /// Degree (number of distinct neighbours) of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.xadj[v as usize + 1] - self.xadj[v as usize]
    }

    /// Total node weight.
    pub fn total_weight(&self) -> u64 {
        self.vwgt.iter().map(|&w| w as u64).sum()
    }

    /// Sum of edge weights crossing the labelled partition (each undirected
    /// edge counted once).
    pub fn cut(&self, labels: &[u32]) -> u64 {
        let mut cut = 0u64;
        for v in 0..self.n() as NodeId {
            for (w, ew) in self.neighbors(v) {
                if w > v && labels[v as usize] != labels[w as usize] {
                    cut += ew as u64;
                }
            }
        }
        cut
    }

    /// Build from an arbitrary undirected weighted edge list (used by
    /// coarsening and tests). Edges must satisfy `u != v`; duplicates are
    /// merged by summing weights.
    pub fn from_weighted_edges(n: usize, edges: &mut [(NodeId, NodeId, u32)], vwgt: Vec<u32>) -> Self {
        debug_assert_eq!(vwgt.len(), n);
        // Normalise to (min, max) and merge duplicates.
        for e in edges.iter_mut() {
            if e.0 > e.1 {
                std::mem::swap(&mut e.0, &mut e.1);
            }
        }
        edges.sort_unstable();
        let mut merged: Vec<(NodeId, NodeId, u32)> = Vec::with_capacity(edges.len());
        for &(u, v, w) in edges.iter() {
            debug_assert_ne!(u, v, "self-loop in working graph");
            if let Some(last) = merged.last_mut() {
                if last.0 == u && last.1 == v {
                    last.2 += w;
                    continue;
                }
            }
            merged.push((u, v, w));
        }

        let mut deg = vec![0usize; n + 1];
        for &(u, v, _) in &merged {
            deg[u as usize + 1] += 1;
            deg[v as usize + 1] += 1;
        }
        for i in 0..n {
            deg[i + 1] += deg[i];
        }
        let xadj = deg.clone();
        let mut cursor = deg;
        let m2 = merged.len() * 2;
        let mut adjncy = vec![0 as NodeId; m2];
        let mut adjwgt = vec![0u32; m2];
        for &(u, v, w) in &merged {
            let cu = &mut cursor[u as usize];
            adjncy[*cu] = v;
            adjwgt[*cu] = w;
            *cu += 1;
            let cv = &mut cursor[v as usize];
            adjncy[*cv] = u;
            adjwgt[*cv] = w;
            *cv += 1;
        }
        WorkGraph {
            xadj,
            adjncy,
            adjwgt,
            vwgt,
        }
    }

    /// Symmetrised working graph of a full directed graph.
    pub fn from_graph(g: &CsrGraph) -> Self {
        let mut edges: Vec<(NodeId, NodeId, u32)> = g.edges().map(|(u, v)| (u, v, 1)).collect();
        Self::from_weighted_edges(g.node_count(), &mut edges, vec![1; g.node_count()])
    }

    /// Working graph induced by `members` (global ids, any order). Returns
    /// the graph in local id space and the local -> global mapping.
    pub fn from_members(g: &CsrGraph, members: &[NodeId]) -> (Self, Vec<NodeId>) {
        let mut globals = members.to_vec();
        globals.sort_unstable();
        let local = |x: NodeId| globals.binary_search(&x).ok();
        let mut edges: Vec<(NodeId, NodeId, u32)> = Vec::new();
        for (lu, &gu) in globals.iter().enumerate() {
            for &gv in g.out_neighbors(gu) {
                if let Some(lv) = local(gv) {
                    if lv != lu {
                        edges.push((lu as NodeId, lv as NodeId, 1));
                    }
                }
            }
        }
        let n = globals.len();
        (
            Self::from_weighted_edges(n, &mut edges, vec![1; n]),
            globals,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_graph::csr::from_edges;

    #[test]
    fn symmetrises_and_weights_reciprocal_edges() {
        let g = from_edges(3, &[(0, 1), (1, 0), (1, 2)]);
        let wg = WorkGraph::from_graph(&g);
        assert_eq!(wg.n(), 3);
        let n0: Vec<_> = wg.neighbors(0).collect();
        assert_eq!(n0, vec![(1, 2)]); // both directions merged, weight 2
        let n2: Vec<_> = wg.neighbors(2).collect();
        assert_eq!(n2, vec![(1, 1)]);
    }

    #[test]
    fn cut_counts_undirected_once() {
        let g = from_edges(4, &[(0, 1), (1, 0), (1, 2), (2, 3)]);
        let wg = WorkGraph::from_graph(&g);
        // Split {0,1} | {2,3}: crossing undirected edge 1-2, weight 1.
        assert_eq!(wg.cut(&[0, 0, 1, 1]), 1);
        // Split {0} | {1,2,3}: crossing 0-1 with weight 2.
        assert_eq!(wg.cut(&[0, 1, 1, 1]), 2);
    }

    #[test]
    fn induced_members_graph() {
        let g = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let (wg, globals) = WorkGraph::from_members(&g, &[1, 2, 3]);
        assert_eq!(globals, vec![1, 2, 3]);
        assert_eq!(wg.n(), 3);
        // Internal edges: 1-2, 2-3 only.
        let total_adj: usize = (0..3).map(|v| wg.degree(v)).sum();
        assert_eq!(total_adj, 4); // 2 undirected edges x 2 endpoints
    }

    #[test]
    fn total_weight_accumulates() {
        let mut edges = vec![(0, 1, 3), (1, 2, 1)];
        let wg = WorkGraph::from_weighted_edges(3, &mut edges, vec![5, 1, 2]);
        assert_eq!(wg.total_weight(), 8);
        let n1: Vec<_> = wg.neighbors(1).collect();
        assert_eq!(n1, vec![(0, 3), (2, 1)]);
    }
}
