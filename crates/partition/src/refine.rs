//! Boundary FM refinement for bisections.
//!
//! After projecting coarse labels to a finer level, each pass visits
//! boundary nodes in descending gain order and applies moves that reduce
//! the cut (or keep it equal while improving balance), subject to the
//! balance window. This is the classic Fiduccia–Mattheyses scheme without
//! the rollback tail — simpler, and in practice within a few percent of
//! full FM on community-structured graphs.

use crate::work::WorkGraph;
use ppr_graph::NodeId;

/// Balance window for side 0's weight.
#[derive(Clone, Copy, Debug)]
pub struct BalanceWindow {
    /// Minimum allowed weight of side 0.
    pub lo: u64,
    /// Maximum allowed weight of side 0.
    pub hi: u64,
}

impl BalanceWindow {
    /// Window centred on `frac * total` with multiplicative slack
    /// `imbalance` (>= 1.0).
    pub fn around(total: u64, frac: f64, imbalance: f64) -> Self {
        let target = frac * total as f64;
        let hi = (target * imbalance).min(total as f64).round() as u64;
        let lo = (total as f64 - (total as f64 - target) * imbalance)
            .max(0.0)
            .round() as u64;
        Self { lo: lo.min(hi), hi }
    }

    fn contains(&self, w: u64) -> bool {
        (self.lo..=self.hi).contains(&w)
    }
}

/// Cut-weight gain of moving `v` to the other side.
fn move_gain(wg: &WorkGraph, labels: &[u32], v: NodeId) -> i64 {
    let mine = labels[v as usize];
    let mut g = 0i64;
    for (w, ew) in wg.neighbors(v) {
        if labels[w as usize] == mine {
            g -= ew as i64;
        } else {
            g += ew as i64;
        }
    }
    g
}

/// Run up to `passes` refinement passes. Returns the final cut weight.
pub fn refine_bisection(
    wg: &WorkGraph,
    labels: &mut [u32],
    window: BalanceWindow,
    passes: u32,
) -> u64 {
    let n = wg.n();
    let mut w0: u64 = (0..n)
        .filter(|&v| labels[v] == 0)
        .map(|v| wg.vwgt[v] as u64)
        .sum();
    let total = wg.total_weight();

    for _ in 0..passes {
        // Collect boundary nodes with positive-or-zero gain.
        let mut cands: Vec<(i64, NodeId)> = (0..n as NodeId)
            .filter_map(|v| {
                let g = move_gain(wg, labels, v);
                (g >= 0 && wg.neighbors(v).any(|(w, _)| labels[w as usize] != labels[v as usize]))
                    .then_some((g, v))
            })
            .collect();
        cands.sort_unstable_by(|a, b| b.cmp(a));

        let mut moved = false;
        for (_, v) in cands {
            // Gains go stale as neighbours move; recompute.
            let g = move_gain(wg, labels, v);
            let vw = wg.vwgt[v as usize] as u64;
            let new_w0 = if labels[v as usize] == 0 {
                w0 - vw
            } else {
                w0 + vw
            };
            if !window.contains(new_w0) {
                continue;
            }
            let balance_improves =
                new_w0.abs_diff(total / 2) < w0.abs_diff(total / 2);
            if g > 0 || (g == 0 && balance_improves) {
                labels[v as usize] ^= 1;
                w0 = new_w0;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    wg.cut(labels)
}

/// Rebalance a bisection into the window by moving lowest-loss boundary
/// nodes from the heavy side, ignoring cut degradation. Used when label
/// projection lands outside the window.
pub fn force_balance(wg: &WorkGraph, labels: &mut [u32], window: BalanceWindow) {
    let n = wg.n();
    let mut w0: u64 = (0..n)
        .filter(|&v| labels[v] == 0)
        .map(|v| wg.vwgt[v] as u64)
        .sum();
    let mut guard = 0usize;
    while !window.contains(w0) && guard <= n {
        guard += 1;
        let from = if w0 > window.hi { 0 } else { 1 };
        // Cheapest move = max gain among the heavy side.
        let best = (0..n as NodeId)
            .filter(|&v| labels[v as usize] == from)
            .max_by_key(|&v| move_gain(wg, labels, v));
        match best {
            Some(v) => {
                let vw = wg.vwgt[v as usize] as u64;
                labels[v as usize] ^= 1;
                if from == 0 {
                    w0 -= vw;
                } else {
                    w0 += vw;
                }
            }
            None => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_graph::GraphBuilder;

    fn two_cliques_bridge() -> WorkGraph {
        let mut b = GraphBuilder::new(12);
        for base in [0u32, 6] {
            for i in 0..6 {
                for j in 0..6 {
                    if i != j {
                        b.push_edge(base + i, base + j);
                    }
                }
            }
        }
        b.push_edge(5, 6);
        WorkGraph::from_graph(&b.build())
    }

    #[test]
    fn window_math() {
        let w = BalanceWindow::around(100, 0.5, 1.1);
        assert_eq!(w.hi, 55);
        assert_eq!(w.lo, 45);
        assert!(w.contains(50));
        assert!(!w.contains(60));
    }

    #[test]
    fn repairs_a_bad_split() {
        let wg = two_cliques_bridge();
        // Deliberately wrong: node 5 on the wrong side.
        let mut labels = vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1];
        let window = BalanceWindow::around(12, 0.5, 1.2);
        let cut = refine_bisection(&wg, &mut labels, window, 4);
        assert_eq!(cut, 1, "labels {labels:?}");
        assert_eq!(labels[5], 0);
    }

    #[test]
    fn respects_balance_window() {
        let wg = two_cliques_bridge();
        // All on side 1 except one node; tight window forbids fixing fully.
        let mut labels = vec![0, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1];
        let window = BalanceWindow { lo: 1, hi: 1 };
        refine_bisection(&wg, &mut labels, window, 4);
        let w0 = labels.iter().filter(|&&l| l == 0).count();
        assert_eq!(w0, 1);
    }

    #[test]
    fn force_balance_reaches_window() {
        let wg = two_cliques_bridge();
        let mut labels = vec![0; 12];
        let window = BalanceWindow::around(12, 0.5, 1.0);
        force_balance(&wg, &mut labels, window);
        let w0: u64 = labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == 0)
            .map(|(v, _)| wg.vwgt[v] as u64)
            .sum();
        assert!(window.contains(w0), "w0 = {w0}");
    }

    #[test]
    fn perfect_split_is_stable() {
        let wg = two_cliques_bridge();
        let mut labels: Vec<u32> = (0..12).map(|v| u32::from(v >= 6)).collect();
        let before = labels.clone();
        let window = BalanceWindow::around(12, 0.5, 1.2);
        let cut = refine_bisection(&wg, &mut labels, window, 4);
        assert_eq!(cut, 1);
        assert_eq!(labels, before);
    }
}
