//! Cut-edge extraction and hub-node (vertex separator) selection.
//!
//! Given a labelled partition of a member set, the *hub nodes* are a vertex
//! cover of the edges whose endpoints carry different labels (Appendix D).
//! Removing the hubs then disconnects the parts — the **separation
//! invariant** every PPV correctness theorem rests on — because each cut
//! edge lost at least one endpoint.

use crate::hopcroft_karp::Bipartite;
use crate::vertex_cover::{greedy_cover, matching_cover};
use ppr_graph::{node_id, CsrGraph, NodeId};

/// Which vertex-cover algorithm selects the hubs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CoverAlgorithm {
    /// Exact minimum cover by König's theorem — only valid for 2-way cuts;
    /// multiway cuts automatically fall back to [`CoverAlgorithm::Greedy`].
    #[default]
    KonigExact,
    /// Greedy max-degree cover.
    Greedy,
    /// Matching-based 2-approximation (Papadimitriou–Steiglitz, the paper's
    /// reference \\[39\\]).
    Matching,
}

/// Undirected cut edges among `members` under `labels` (parallel arrays;
/// `members` must be sorted ascending). Each crossing pair appears once as
/// `(min, max)` in global ids.
pub fn cut_edges(g: &CsrGraph, members: &[NodeId], labels: &[u32]) -> Vec<(NodeId, NodeId)> {
    debug_assert_eq!(members.len(), labels.len());
    debug_assert!(members.windows(2).all(|w| w[0] < w[1]));
    let mut out = Vec::new();
    for (i, &u) in members.iter().enumerate() {
        for &v in g.out_neighbors(u) {
            if let Ok(j) = members.binary_search(&v) {
                if labels[i] != labels[j] {
                    out.push((u.min(v), u.max(v)));
                }
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Select hub nodes covering every cut edge. Returns sorted global ids.
pub fn select_hubs(
    g: &CsrGraph,
    members: &[NodeId],
    labels: &[u32],
    algo: CoverAlgorithm,
) -> Vec<NodeId> {
    let edges = cut_edges(g, members, labels);
    if edges.is_empty() {
        return Vec::new();
    }
    let parts = {
        let mut ls: Vec<u32> = labels.to_vec();
        ls.sort_unstable();
        ls.dedup();
        ls.len()
    };
    match (algo, parts) {
        (CoverAlgorithm::KonigExact, 0..=2) => konig_hubs(members, labels, &edges),
        (CoverAlgorithm::KonigExact, _) | (CoverAlgorithm::Greedy, _) => greedy_cover(&edges),
        (CoverAlgorithm::Matching, _) => matching_cover(&edges),
    }
}

/// Exact minimum cover of a bipartite (2-way) cut via König's theorem.
fn konig_hubs(members: &[NodeId], labels: &[u32], edges: &[(NodeId, NodeId)]) -> Vec<NodeId> {
    let label_of = |v: NodeId| labels[members.binary_search(&v).expect("endpoint not a member")];

    // Dense-index the touched endpoints per side.
    let mut left_ids: Vec<NodeId> = Vec::new();
    let mut right_ids: Vec<NodeId> = Vec::new();
    for &(u, v) in edges {
        let (l, r) = if label_of(u) == labels_min(labels) {
            (u, v)
        } else {
            (v, u)
        };
        left_ids.push(l);
        right_ids.push(r);
    }
    left_ids.sort_unstable();
    left_ids.dedup();
    right_ids.sort_unstable();
    right_ids.dedup();

    let mut b = Bipartite::new(left_ids.len(), right_ids.len());
    for &(u, v) in edges {
        let (l, r) = if label_of(u) == labels_min(labels) {
            (u, v)
        } else {
            (v, u)
        };
        let li = node_id(left_ids.binary_search(&l).unwrap());
        let ri = node_id(right_ids.binary_search(&r).unwrap());
        b.add_edge(li, ri);
    }
    let (cl, cr) = b.min_vertex_cover();
    let mut hubs: Vec<NodeId> = cl
        .into_iter()
        .map(|i| left_ids[i as usize])
        .chain(cr.into_iter().map(|i| right_ids[i as usize]))
        .collect();
    hubs.sort_unstable();
    hubs
}

fn labels_min(labels: &[u32]) -> u32 {
    labels.iter().copied().min().unwrap_or(0)
}

/// Verify the separation invariant: no edge of `g` connects two non-hub
/// members with different labels.
pub fn verify_separation(
    g: &CsrGraph,
    members: &[NodeId],
    labels: &[u32],
    hubs: &[NodeId],
) -> bool {
    let is_hub = |v: NodeId| hubs.binary_search(&v).is_ok();
    cut_edges(g, members, labels)
        .iter()
        .all(|&(u, v)| is_hub(u) || is_hub(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_graph::csr::from_edges;

    /// Paper Figure 2: G1 = {u1, u3}, G2 = {u2, u4, u5}; ids 0..5 in order.
    /// Cut edges connect u1,u2 across parts; hubs {u1, u2} in the paper.
    fn fig2() -> CsrGraph {
        // u1=0, u2=1, u3=2, u4=3, u5=4
        from_edges(
            5,
            &[
                (0, 2),
                (2, 0), // u1 <-> u3 inside G1
                (1, 3),
                (3, 1), // u2 <-> u4 inside G2
                (3, 4),
                (4, 3), // u4 <-> u5 inside G2
                (0, 1),
                (1, 0), // u1 <-> u2 across
                (0, 3), // u1 -> u4 across
                (4, 0), // u5 -> u1 across
            ],
        )
    }

    #[test]
    fn cut_edges_cross_parts_only() {
        let g = fig2();
        let members: Vec<NodeId> = vec![0, 1, 2, 3, 4];
        let labels = vec![0, 1, 0, 1, 1]; // G1 = {0,2}, G2 = {1,3,4}
        let cut = cut_edges(&g, &members, &labels);
        assert_eq!(cut, vec![(0, 1), (0, 3), (0, 4)]);
    }

    #[test]
    fn konig_picks_minimum_cover() {
        let g = fig2();
        let members: Vec<NodeId> = vec![0, 1, 2, 3, 4];
        let labels = vec![0, 1, 0, 1, 1];
        let hubs = select_hubs(&g, &members, &labels, CoverAlgorithm::KonigExact);
        // All three cut edges share endpoint u1 (0): minimum cover is {0}.
        assert_eq!(hubs, vec![0]);
        assert!(verify_separation(&g, &members, &labels, &hubs));
    }

    #[test]
    fn greedy_and_matching_also_separate() {
        let g = fig2();
        let members: Vec<NodeId> = vec![0, 1, 2, 3, 4];
        let labels = vec![0, 1, 0, 1, 1];
        for algo in [CoverAlgorithm::Greedy, CoverAlgorithm::Matching] {
            let hubs = select_hubs(&g, &members, &labels, algo);
            assert!(verify_separation(&g, &members, &labels, &hubs), "{algo:?}");
        }
    }

    #[test]
    fn no_cut_no_hubs() {
        let g = from_edges(4, &[(0, 1), (2, 3)]);
        let members = vec![0, 1, 2, 3];
        let labels = vec![0, 0, 1, 1];
        assert!(select_hubs(&g, &members, &labels, CoverAlgorithm::KonigExact).is_empty());
    }

    #[test]
    fn multiway_falls_back_to_greedy() {
        // Triangle of parts: 0-1, 1-2, 2-0 cut edges, 3 labels.
        let g = from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let members = vec![0, 1, 2];
        let labels = vec![0, 1, 2];
        let hubs = select_hubs(&g, &members, &labels, CoverAlgorithm::KonigExact);
        assert!(verify_separation(&g, &members, &labels, &hubs));
        assert!(hubs.len() <= 2);
    }

    #[test]
    fn subset_members_ignore_outside_edges() {
        let g = fig2();
        // Only consider {1, 3, 4}; edges to node 0 are outside the member
        // set and must not produce cut pairs.
        let members = vec![1, 3, 4];
        let labels = vec![0, 0, 1];
        let cut = cut_edges(&g, &members, &labels);
        assert_eq!(cut, vec![(3, 4)]);
    }
}
