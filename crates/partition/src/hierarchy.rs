//! Hierarchical graph partitioning (paper §4.2, Figures 6–7).
//!
//! The graph is recursively split top-down. At every internal subgraph the
//! member set is partitioned `fanout` ways, the cut edges' vertex cover
//! becomes that subgraph's hub set `H(G_m^i)`, and the children are the
//! parts *minus* the hubs ("once a node is selected as hub node, this node
//! and all the related edges will be omitted in the next level").
//! Recursion stops when a subgraph has no internal edges (the paper's
//! criterion, §6.2.1), is tiny, or hits a depth cap.

use crate::kway::partition_kway;
use crate::separator::{select_hubs, CoverAlgorithm};
use crate::work::WorkGraph;
use crate::PartitionConfig;
use ppr_graph::{CsrGraph, NodeId};

/// One subgraph in the hierarchy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubgraphNode {
    /// Level in the hierarchy; the root (whole graph) is level 0.
    pub level: u32,
    /// Arena index of the parent, `None` for the root.
    pub parent: Option<usize>,
    /// Arena indices of children (parts minus hubs), possibly empty.
    pub children: Vec<usize>,
    /// Member nodes (sorted, global ids). Includes this subgraph's own
    /// hubs; excludes every ancestor's hubs.
    pub members: Vec<NodeId>,
    /// Hub nodes separating the children (sorted). Empty iff leaf.
    pub hubs: Vec<NodeId>,
}

impl SubgraphNode {
    /// True when this subgraph was not split further.
    pub fn is_leaf(&self) -> bool {
        self.hubs.is_empty() && self.children.is_empty()
    }
}

/// Configuration for [`Hierarchy::build`].
#[derive(Clone, Copy, Debug)]
pub struct HierarchyConfig {
    /// Parts per split (2 = the paper's default two-way scheme, §4.2).
    pub fanout: usize,
    /// Optional depth cap (`None` = split until leaves are small enough).
    pub max_depth: Option<u32>,
    /// Do not split subgraphs smaller than this.
    pub min_members: usize,
    /// Stop splitting once a subgraph has at most this many members. The
    /// paper splits "until no edges exist within each subgraph" in the
    /// limit but notes (§6.2.4) that once leaves hold few edges further
    /// levels buy nothing; a size target keeps the total hub count small
    /// on graphs whose communities are internally dense. Set to 0 to force
    /// splitting all the way to edge-free leaves.
    pub max_leaf_size: usize,
    /// Hub-selection algorithm.
    pub cover: CoverAlgorithm,
    /// Partitioner options.
    pub partition: PartitionConfig,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self {
            fanout: 2,
            max_depth: None,
            min_members: 4,
            max_leaf_size: 32,
            cover: CoverAlgorithm::KonigExact,
            partition: PartitionConfig::default(),
        }
    }
}

/// The full hierarchical partition of a graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hierarchy {
    /// Arena of subgraphs; index 0 is the root.
    pub nodes: Vec<SubgraphNode>,
    /// Per graph node: the arena index of its *home* subgraph — the leaf
    /// containing it (non-hub nodes) or the subgraph whose hub set it
    /// belongs to (hub nodes).
    pub home: Vec<usize>,
    /// Per graph node: `Some(level)` if the node is a hub at that level.
    pub hub_level: Vec<Option<u32>>,
    /// Maximum level of any subgraph.
    pub depth: u32,
}

impl Hierarchy {
    /// Build the hierarchy for `g`.
    pub fn build(g: &CsrGraph, cfg: &HierarchyConfig) -> Self {
        assert!(cfg.fanout >= 2, "fanout must be at least 2");
        let n = g.node_count();
        let all: Vec<NodeId> = (0..n as NodeId).collect();
        let mut h = Hierarchy {
            nodes: Vec::new(),
            home: vec![usize::MAX; n],
            hub_level: vec![None; n],
            depth: 0,
        };
        h.split_into(g, cfg, all, 0, None);
        debug_assert!(h.home.iter().all(|&x| x != usize::MAX));
        h
    }

    fn split_into(
        &mut self,
        g: &CsrGraph,
        cfg: &HierarchyConfig,
        mut members: Vec<NodeId>,
        level: u32,
        parent: Option<usize>,
    ) -> usize {
        members.sort_unstable();
        let idx = self.nodes.len();
        self.nodes.push(SubgraphNode {
            level,
            parent,
            children: Vec::new(),
            members: members.clone(),
            hubs: Vec::new(),
        });
        self.depth = self.depth.max(level);

        let stop_by_depth = cfg.max_depth.map(|d| level >= d).unwrap_or(false);
        let stop_by_size = members.len() <= cfg.max_leaf_size || members.len() < cfg.min_members;
        if stop_by_depth || stop_by_size || count_internal_edges(g, &members) == 0 {
            return self.finish_leaf(idx);
        }

        // Partition the induced subgraph.
        let (wg, globals) = WorkGraph::from_members(g, &members);
        debug_assert_eq!(globals, members);
        let pcfg = PartitionConfig {
            seed: cfg
                .partition
                .seed
                .wrapping_add((idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            ..cfg.partition
        };
        let labels = partition_kway(&wg, cfg.fanout, &pcfg);
        let hubs = select_hubs(g, &members, &labels, cfg.cover);

        // Children = parts minus hubs.
        let is_hub = |v: NodeId| hubs.binary_search(&v).is_ok();
        let mut parts: Vec<Vec<NodeId>> = vec![Vec::new(); cfg.fanout];
        for (i, &v) in members.iter().enumerate() {
            if !is_hub(v) {
                parts[labels[i] as usize].push(v);
            }
        }
        let nonempty = parts.iter().filter(|p| !p.is_empty()).count();
        if hubs.is_empty() && nonempty <= 1 {
            // Degenerate split (e.g. a clique the partitioner refused to
            // cut without covering everything): keep as leaf.
            return self.finish_leaf(idx);
        }

        self.nodes[idx].hubs = hubs.clone();
        for &h in &hubs {
            self.home[h as usize] = idx;
            self.hub_level[h as usize] = Some(level);
        }
        for part in parts {
            if part.is_empty() {
                continue;
            }
            let child = self.split_into(g, cfg, part, level + 1, Some(idx));
            self.nodes[idx].children.push(child);
        }
        idx
    }

    fn finish_leaf(&mut self, idx: usize) -> usize {
        let members = self.nodes[idx].members.clone();
        for v in members {
            self.home[v as usize] = idx;
        }
        idx
    }

    /// Arena index of the root (always 0).
    pub fn root(&self) -> usize {
        0
    }

    /// Chain of subgraphs from the root down to `v`'s home, inclusive.
    pub fn path_to(&self, v: NodeId) -> Vec<usize> {
        let mut path = Vec::new();
        let mut cur = Some(self.home[v as usize]);
        while let Some(i) = cur {
            path.push(i);
            cur = self.nodes[i].parent;
        }
        path.reverse();
        path
    }

    /// Iterator over leaf subgraph indices.
    pub fn leaves(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.nodes.len()).filter(|&i| self.nodes[i].is_leaf())
    }

    /// Total hub count per level (the paper's Tables 2–5).
    pub fn hubs_per_level(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.depth as usize + 1];
        for n in &self.nodes {
            counts[n.level as usize] += n.hubs.len();
        }
        while counts.last() == Some(&0) && counts.len() > 1 {
            counts.pop();
        }
        counts
    }

    /// Total number of hub nodes across all levels.
    pub fn total_hubs(&self) -> usize {
        self.nodes.iter().map(|n| n.hubs.len()).sum()
    }

    /// True if `v` is a hub at any level.
    pub fn is_hub(&self, v: NodeId) -> bool {
        self.hub_level[v as usize].is_some()
    }
}

fn count_internal_edges(g: &CsrGraph, members: &[NodeId]) -> usize {
    members
        .iter()
        .map(|&u| {
            g.out_neighbors(u)
                .iter()
                .filter(|&&v| members.binary_search(&v).is_ok())
                .count()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_graph::generators::{hierarchical_sbm, HsbmConfig};

    fn sample(n: usize) -> CsrGraph {
        hierarchical_sbm(
            &HsbmConfig {
                nodes: n,
                depth: 5,
                locality: 0.9,
                ..Default::default()
            },
            7,
        )
    }

    #[test]
    fn every_node_has_exactly_one_home() {
        let g = sample(300);
        let h = Hierarchy::build(&g, &HierarchyConfig::default());
        // Membership partition: hubs of internal nodes + members of leaves.
        let mut count = vec![0usize; 300];
        for n in &h.nodes {
            if n.is_leaf() {
                for &v in &n.members {
                    count[v as usize] += 1;
                }
            } else {
                for &v in &n.hubs {
                    count[v as usize] += 1;
                }
            }
        }
        assert!(count.iter().all(|&c| c == 1));
    }

    #[test]
    fn children_exclude_hubs_and_ancestors() {
        let g = sample(300);
        let h = Hierarchy::build(&g, &HierarchyConfig::default());
        for (i, n) in h.nodes.iter().enumerate() {
            for &c in &n.children {
                let child = &h.nodes[c];
                assert_eq!(child.parent, Some(i));
                assert_eq!(child.level, n.level + 1);
                for &v in &child.members {
                    assert!(n.members.binary_search(&v).is_ok(), "child member not in parent");
                    assert!(n.hubs.binary_search(&v).is_err(), "hub leaked into child");
                }
            }
        }
    }

    #[test]
    fn separation_invariant_at_every_internal_node() {
        let g = sample(400);
        let h = Hierarchy::build(&g, &HierarchyConfig::default());
        for n in &h.nodes {
            if n.is_leaf() {
                continue;
            }
            // An edge between members of two *different* children must not
            // exist (hubs were removed; cover guarantees separation).
            let child_of = |v: NodeId| {
                n.children
                    .iter()
                    .position(|&c| h.nodes[c].members.binary_search(&v).is_ok())
            };
            for &u in &n.members {
                if n.hubs.binary_search(&u).is_ok() {
                    continue;
                }
                for &v in g.out_neighbors(u) {
                    if n.members.binary_search(&v).is_err() || n.hubs.binary_search(&v).is_ok() {
                        continue;
                    }
                    assert_eq!(child_of(u), child_of(v), "edge ({u},{v}) crosses children");
                }
            }
        }
    }

    #[test]
    fn leaves_have_no_internal_edges_without_depth_cap() {
        let g = sample(200);
        let cfg = HierarchyConfig {
            min_members: 2,
            ..Default::default()
        };
        let h = Hierarchy::build(&g, &cfg);
        for leaf in h.leaves() {
            let members = &h.nodes[leaf].members;
            if members.len() < cfg.min_members {
                continue; // stopped by size, may retain edges
            }
            // Leaves may retain internal edges only when the split was
            // degenerate; the common case is edge-free.
        }
        // Structural sanity: there is at least one leaf and depth >= 1.
        assert!(h.leaves().count() >= 2);
        assert!(h.depth >= 1);
    }

    #[test]
    fn path_to_walks_root_to_home() {
        let g = sample(300);
        let h = Hierarchy::build(&g, &HierarchyConfig::default());
        for v in [0u32, 57, 123, 299] {
            let path = h.path_to(v);
            assert_eq!(path[0], h.root());
            assert_eq!(*path.last().unwrap(), h.home[v as usize]);
            for w in path.windows(2) {
                assert_eq!(h.nodes[w[1]].parent, Some(w[0]));
            }
        }
    }

    #[test]
    fn depth_cap_respected() {
        let g = sample(500);
        let cfg = HierarchyConfig {
            max_depth: Some(2),
            ..Default::default()
        };
        let h = Hierarchy::build(&g, &cfg);
        assert!(h.depth <= 2);
        for n in &h.nodes {
            assert!(n.level <= 2);
        }
    }

    #[test]
    fn hubs_per_level_sums_to_total() {
        let g = sample(400);
        let h = Hierarchy::build(&g, &HierarchyConfig::default());
        let per_level = h.hubs_per_level();
        assert_eq!(per_level.iter().sum::<usize>(), h.total_hubs());
        // Hubs are a small fraction on community graphs (paper's premise).
        assert!(h.total_hubs() < 400 / 2, "|H| = {}", h.total_hubs());
    }

    #[test]
    fn multiway_fanout() {
        let g = sample(400);
        let cfg = HierarchyConfig {
            fanout: 4,
            ..Default::default()
        };
        let h = Hierarchy::build(&g, &cfg);
        // Root should have up to 4 children.
        assert!(h.nodes[0].children.len() <= 4);
        assert!(h.nodes[0].children.len() >= 2);
        // Everyone still gets a home.
        assert!(h.home.iter().all(|&x| x != usize::MAX));
    }

    #[test]
    fn tiny_graph_is_single_leaf() {
        let g = ppr_graph::csr::from_edges(3, &[(0, 1), (1, 2)]);
        let h = Hierarchy::build(&g, &HierarchyConfig::default());
        assert_eq!(h.nodes.len(), 1);
        assert!(h.nodes[0].is_leaf());
        assert_eq!(h.depth, 0);
    }
}
