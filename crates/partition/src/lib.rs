#![deny(missing_docs)]

//! METIS-like multilevel graph partitioning and hub-node selection.
//!
//! The paper's algorithms (GPA §3, HGPA §4) need two things from a
//! partitioner:
//!
//! 1. **Balanced partitions with small edge cuts.** The paper uses METIS
//!    \\[26\\]; this crate implements the same multilevel family from scratch:
//!    heavy-edge-matching coarsening ([`coarsen`]), greedy-graph-growing
//!    initial bisection ([`bisect`]), and boundary FM refinement
//!    ([`refine`]), driven by [`multilevel`] and extended to k parts by
//!    recursive bisection in [`kway`].
//! 2. **Hub nodes = vertex separators from cut edges** (Appendix D).
//!    [`separator`] extracts the cut edges of a labelled partition and
//!    selects a vertex cover of them: exact minimum cover via König's
//!    theorem / Hopcroft–Karp matching for 2-way cuts
//!    ([`hopcroft_karp`]), and approximate covers for the general case
//!    ([`vertex_cover`]).
//!
//! [`hierarchy`] composes these into the recursive structure HGPA consumes:
//! a tree of subgraphs where each internal node records the hub set that
//! separates its children (paper Figure 6/7), and [`flat`] produces the
//! single-level m-way structure GPA consumes.
//!
//! Exactness of the PPV algorithms **never** depends on partition quality:
//! any vertex set whose removal disconnects the parts yields correct
//! results (Theorem 1/3); quality only affects space and time. Property
//! tests in this crate therefore focus on the *separation invariant*.

pub mod bisect;
pub mod coarsen;
pub mod flat;
pub mod hierarchy;
pub mod hopcroft_karp;
pub mod kway;
pub mod multilevel;
pub mod quality;
pub mod refine;
pub mod separator;
pub mod vertex_cover;
pub mod work;

pub use flat::{flat_partition, FlatPartition};
pub use hierarchy::{Hierarchy, HierarchyConfig, SubgraphNode};
pub use kway::partition_kway;
pub use separator::{select_hubs, CoverAlgorithm};
pub use work::WorkGraph;

/// Options shared by all partitioning entry points.
#[derive(Clone, Copy, Debug)]
pub struct PartitionConfig {
    /// Allowed imbalance: the heavier side may carry at most
    /// `imbalance * total / 2` weight in a bisection (default 1.05).
    pub imbalance: f64,
    /// RNG seed for matching order and initial-partition starts.
    pub seed: u64,
    /// Stop coarsening when at most this many coarse nodes remain.
    pub coarsen_until: usize,
    /// Number of greedy-growing attempts for the initial bisection.
    pub init_tries: u32,
    /// Maximum FM refinement passes per uncoarsening level.
    pub fm_passes: u32,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        Self {
            imbalance: 1.05,
            seed: 0x5eed,
            coarsen_until: 64,
            init_tries: 8,
            fm_passes: 4,
        }
    }
}
