//! Coarsening via heavy-edge matching (the METIS HEM scheme).
//!
//! Each coarsening step computes a matching that prefers heavy edges —
//! contracting them first removes the most cut-expensive edges from the
//! problem — then contracts matched pairs into single coarse nodes whose
//! weights add and whose adjacencies merge.

use crate::work::WorkGraph;
use ppr_graph::{node_id, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

const UNMATCHED: u32 = u32::MAX;

/// One coarsening step: heavy-edge matching + contraction.
///
/// Returns the coarse graph and the fine-to-coarse node map.
pub fn coarsen_step(wg: &WorkGraph, rng: &mut StdRng) -> (WorkGraph, Vec<u32>) {
    let n = wg.n();
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    order.shuffle(rng);

    // Heavy-edge matching: visit nodes in random order; match each
    // unmatched node with its unmatched neighbour of maximum edge weight
    // (ties broken randomly by visit order).
    let mut mate = vec![UNMATCHED; n];
    for &v in &order {
        if mate[v as usize] != UNMATCHED {
            continue;
        }
        let mut best: Option<(NodeId, u32)> = None;
        for (w, ew) in wg.neighbors(v) {
            if mate[w as usize] == UNMATCHED && w != v {
                match best {
                    Some((_, bw)) if bw >= ew => {}
                    _ => best = Some((w, ew)),
                }
            }
        }
        match best {
            Some((w, _)) => {
                mate[v as usize] = w;
                mate[w as usize] = v;
            }
            None => mate[v as usize] = v, // matched with itself
        }
    }

    // Assign coarse ids: the smaller endpoint of each pair owns the id.
    let mut coarse_of = vec![UNMATCHED; n];
    let mut next = 0u32;
    for v in 0..n as u32 {
        if coarse_of[v as usize] != UNMATCHED {
            continue;
        }
        let m = mate[v as usize];
        coarse_of[v as usize] = next;
        if m != v && m != UNMATCHED {
            coarse_of[m as usize] = next;
        }
        next += 1;
    }
    let nc = next as usize;

    // Contract.
    let mut vwgt = vec![0u32; nc];
    for v in 0..n {
        vwgt[coarse_of[v] as usize] += wg.vwgt[v];
    }
    let mut edges: Vec<(NodeId, NodeId, u32)> = Vec::with_capacity(wg.adjncy.len() / 2);
    for v in 0..n as NodeId {
        let cv = coarse_of[v as usize];
        for (w, ew) in wg.neighbors(v) {
            let cw = coarse_of[w as usize];
            if cv < cw {
                edges.push((cv, cw, ew));
            }
        }
    }
    (
        WorkGraph::from_weighted_edges(nc, &mut edges, vwgt),
        coarse_of,
    )
}

/// Coarsen until `target` nodes remain or the shrink rate stalls.
///
/// Returns the ladder of graphs (finest first, coarsest last) and the
/// fine-to-coarse maps (`maps[i]` maps `graphs[i]` ids to `graphs[i+1]`
/// ids).
pub fn coarsen_ladder(
    finest: &WorkGraph,
    target: usize,
    rng: &mut StdRng,
) -> (Vec<WorkGraph>, Vec<Vec<u32>>) {
    let mut graphs = vec![finest.clone()];
    let mut maps = Vec::new();
    loop {
        let cur = graphs.last().unwrap();
        if cur.n() <= target.max(2) {
            break;
        }
        let (coarse, map) = coarsen_step(cur, rng);
        // Matching stalls on star-like graphs; stop when shrink < 10%.
        if coarse.n() as f64 > cur.n() as f64 * 0.95 {
            break;
        }
        graphs.push(coarse);
        maps.push(map);
    }
    (graphs, maps)
}

/// Random helper shared with the initial partitioner.
pub(crate) fn random_node(n: usize, rng: &mut StdRng) -> NodeId {
    node_id(rng.random_range(0..n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_graph::csr::from_edges;
    use rand::SeedableRng;

    fn path_graph(n: usize) -> WorkGraph {
        let mut edges = Vec::new();
        for i in 0..n - 1 {
            edges.push((i as NodeId, i as NodeId + 1));
        }
        let mut b = ppr_graph::GraphBuilder::new(n);
        b.extend_edges(edges);
        WorkGraph::from_graph(&b.build())
    }

    #[test]
    fn step_preserves_total_weight() {
        let wg = path_graph(100);
        let mut rng = StdRng::seed_from_u64(1);
        let (coarse, map) = coarsen_step(&wg, &mut rng);
        assert_eq!(coarse.total_weight(), wg.total_weight());
        assert_eq!(map.len(), 100);
        assert!(coarse.n() < 100);
        assert!(coarse.n() >= 50);
    }

    #[test]
    fn map_is_surjective_onto_coarse_ids() {
        let wg = path_graph(64);
        let mut rng = StdRng::seed_from_u64(2);
        let (coarse, map) = coarsen_step(&wg, &mut rng);
        let mut seen = vec![false; coarse.n()];
        for &c in &map {
            seen[c as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn contraction_merges_parallel_edges() {
        // Triangle 0-1-2: contracting 0,1 must merge their edges to 2.
        let g = from_edges(3, &[(0, 1), (1, 0), (0, 2), (2, 0), (1, 2), (2, 1)]);
        let wg = WorkGraph::from_graph(&g);
        let mut rng = StdRng::seed_from_u64(3);
        let (coarse, _) = coarsen_step(&wg, &mut rng);
        assert_eq!(coarse.n(), 2);
        // One undirected edge of weight 2+2 = 4 between the two coarse nodes.
        let (_, w) = coarse.neighbors(0).next().unwrap();
        assert_eq!(w, 4);
    }

    #[test]
    fn ladder_reaches_target() {
        let wg = path_graph(512);
        let mut rng = StdRng::seed_from_u64(4);
        let (graphs, maps) = coarsen_ladder(&wg, 32, &mut rng);
        assert!(graphs.last().unwrap().n() <= 64); // within a factor of the target
        assert_eq!(maps.len(), graphs.len() - 1);
        for g in &graphs {
            assert_eq!(g.total_weight(), 512);
        }
    }

    #[test]
    fn edgeless_graph_stalls_gracefully() {
        let mut edges: Vec<(NodeId, NodeId, u32)> = Vec::new();
        let wg = WorkGraph::from_weighted_edges(10, &mut edges, vec![1; 10]);
        let mut rng = StdRng::seed_from_u64(5);
        let (graphs, _) = coarsen_ladder(&wg, 2, &mut rng);
        // No edges -> nothing can match -> single level.
        assert_eq!(graphs.len(), 1);
    }
}
