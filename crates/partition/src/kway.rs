//! k-way partitioning by recursive bisection (as in multilevel METIS).

use crate::multilevel::bisect_multilevel;
use crate::work::WorkGraph;
use crate::PartitionConfig;
use ppr_graph::{CsrGraph, NodeId};

/// Partition `wg` into `k` parts of near-equal node weight. Returns a part
/// label in `0..k` for every node.
pub fn partition_kway(wg: &WorkGraph, k: usize, cfg: &PartitionConfig) -> Vec<u32> {
    assert!(k >= 1, "k must be positive");
    let n = wg.n();
    let mut labels = vec![0u32; n];
    if k == 1 || n == 0 {
        return labels;
    }
    let members: Vec<NodeId> = (0..n as NodeId).collect();
    recurse(wg, &members, k, 0, cfg, &mut labels, cfg.seed);
    labels
}

fn recurse(
    parent: &WorkGraph,
    members: &[NodeId],
    k: usize,
    base_label: u32,
    cfg: &PartitionConfig,
    out: &mut [u32],
    seed: u64,
) {
    if k == 1 || members.len() <= 1 {
        for &m in members {
            out[m as usize] = base_label;
        }
        return;
    }
    let k_left = k / 2;
    let k_right = k - k_left;
    let frac = k_left as f64 / k as f64;

    // Induced sub-working-graph on `members` (already in parent id space).
    let (sub, map) = induce(parent, members);
    let sub_cfg = PartitionConfig { seed, ..*cfg };
    let side = bisect_multilevel(&sub, frac, &sub_cfg);

    let mut left: Vec<NodeId> = Vec::new();
    let mut right: Vec<NodeId> = Vec::new();
    for (local, &side) in side.iter().enumerate() {
        if side == 0 {
            left.push(map[local]);
        } else {
            right.push(map[local]);
        }
    }
    // Guard: a degenerate split would recurse forever; fall back to an
    // arbitrary even split (exactness of PPV does not depend on quality).
    if left.is_empty() || right.is_empty() {
        let mid = members.len() / 2;
        left = members[..mid].to_vec();
        right = members[mid..].to_vec();
    }

    recurse(parent, &left, k_left, base_label, cfg, out, seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
    recurse(parent, &right, k_right, base_label + k_left as u32, cfg, out, seed.wrapping_mul(0x9E37_79B9).wrapping_add(2));
}

/// Induced sub-working-graph of `members`; returns it with local->parent map.
fn induce(parent: &WorkGraph, members: &[NodeId]) -> (WorkGraph, Vec<NodeId>) {
    let mut map = members.to_vec();
    map.sort_unstable();
    let local_of = |x: NodeId| map.binary_search(&x).ok();
    let mut edges: Vec<(NodeId, NodeId, u32)> = Vec::new();
    let mut vwgt = Vec::with_capacity(map.len());
    for (lu, &gu) in map.iter().enumerate() {
        vwgt.push(parent.vwgt[gu as usize]);
        for (gv, ew) in parent.neighbors(gu) {
            if let Some(lv) = local_of(gv) {
                if lu < lv {
                    edges.push((lu as NodeId, lv as NodeId, ew));
                }
            }
        }
    }
    let n = map.len();
    (WorkGraph::from_weighted_edges(n, &mut edges, vwgt), map)
}

/// Convenience: k-way partition of a directed graph's symmetrised structure.
pub fn partition_graph_kway(g: &CsrGraph, k: usize, cfg: &PartitionConfig) -> Vec<u32> {
    partition_kway(&WorkGraph::from_graph(g), k, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_graph::generators::{hierarchical_sbm, HsbmConfig};

    fn community_graph(n: usize) -> CsrGraph {
        hierarchical_sbm(
            &HsbmConfig {
                nodes: n,
                depth: 5,
                locality: 0.92,
                ..Default::default()
            },
            77,
        )
    }

    #[test]
    fn produces_k_nonempty_balanced_parts() {
        let g = community_graph(800);
        for k in [2usize, 3, 4, 6, 8] {
            let labels = partition_graph_kway(&g, k, &PartitionConfig::default());
            let mut sizes = vec![0usize; k];
            for &l in &labels {
                assert!((l as usize) < k);
                sizes[l as usize] += 1;
            }
            let ideal = 800 / k;
            for (i, &s) in sizes.iter().enumerate() {
                assert!(s > 0, "part {i} empty for k={k}");
                assert!(
                    s as f64 <= 1.5 * ideal as f64 + 8.0,
                    "part {i} size {s} too large for k={k}"
                );
            }
        }
    }

    #[test]
    fn k_equals_one_is_identity() {
        let g = community_graph(50);
        let labels = partition_graph_kway(&g, 1, &PartitionConfig::default());
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn k_exceeding_n_still_labels_validly() {
        let g = community_graph(6);
        let labels = partition_graph_kway(&g, 4, &PartitionConfig::default());
        assert_eq!(labels.len(), 6);
        for &l in &labels {
            assert!(l < 4);
        }
    }

    #[test]
    fn deterministic() {
        let g = community_graph(300);
        let a = partition_graph_kway(&g, 4, &PartitionConfig::default());
        let b = partition_graph_kway(&g, 4, &PartitionConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn cut_quality_beats_random() {
        let g = community_graph(1000);
        let wg = WorkGraph::from_graph(&g);
        let labels = partition_kway(&wg, 4, &PartitionConfig::default());
        let cut = {
            // count undirected cut edges
            let mut c = 0u64;
            for v in 0..wg.n() as NodeId {
                for (w, ew) in wg.neighbors(v) {
                    if w > v && labels[v as usize] != labels[w as usize] {
                        c += ew as u64;
                    }
                }
            }
            c
        };
        let total: u64 = wg.adjwgt.iter().map(|&w| w as u64).sum::<u64>() / 2;
        // Random 4-way labelling cuts ~75%; demand far better.
        assert!((cut as f64) < 0.3 * total as f64, "cut {cut}/{total}");
    }
}
