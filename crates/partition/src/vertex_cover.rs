//! Approximate vertex covers for general (multiway) cut-edge sets.
//!
//! For more than two parts the cut edges need not form a bipartite graph,
//! so König no longer applies. The paper (Appendix D) uses the classic
//! matching-based 2-approximation [Papadimitriou–Steiglitz]; we provide it
//! plus greedy max-degree, which empirically yields smaller covers on
//! skewed cut structures. Either is valid: hub correctness only requires
//! *covering* every cut edge (the separation invariant).

use ppr_graph::NodeId;
use std::collections::BTreeMap;

/// Greedy max-degree cover: repeatedly take the vertex covering the most
/// uncovered edges.
pub fn greedy_cover(edges: &[(NodeId, NodeId)]) -> Vec<NodeId> {
    if edges.is_empty() {
        return Vec::new();
    }
    // Adjacency over the touched vertices only.
    let mut adj: BTreeMap<NodeId, Vec<usize>> = BTreeMap::new();
    for (i, &(u, v)) in edges.iter().enumerate() {
        adj.entry(u).or_default().push(i);
        adj.entry(v).or_default().push(i);
    }
    let mut covered = vec![false; edges.len()];
    let mut remaining = edges.len();
    let mut cover = Vec::new();

    // Bucketed greedy: recompute a vertex's live degree lazily.
    let mut heap: std::collections::BinaryHeap<(usize, NodeId)> = adj
        .iter()
        .map(|(&v, es)| (es.len(), v))
        .collect();
    while remaining > 0 {
        let (claimed, v) = heap.pop().expect("edges remain but heap is empty");
        let live = adj[&v].iter().filter(|&&e| !covered[e]).count();
        if live == 0 {
            continue;
        }
        if live < claimed {
            heap.push((live, v)); // stale entry, re-insert with true degree
            continue;
        }
        cover.push(v);
        for &e in &adj[&v] {
            if !covered[e] {
                covered[e] = true;
                remaining -= 1;
            }
        }
    }
    cover.sort_unstable();
    cover
}

/// Matching-based 2-approximation: take both endpoints of a maximal
/// matching.
pub fn matching_cover(edges: &[(NodeId, NodeId)]) -> Vec<NodeId> {
    let mut in_cover: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
    for &(u, v) in edges {
        if !in_cover.contains(&u) && !in_cover.contains(&v) {
            in_cover.insert(u);
            in_cover.insert(v);
        }
    }
    let mut cover: Vec<NodeId> = in_cover.into_iter().collect();
    cover.sort_unstable();
    cover
}

/// Check that `cover` covers every edge (test / debug helper).
pub fn is_cover(edges: &[(NodeId, NodeId)], cover: &[NodeId]) -> bool {
    let set: std::collections::HashSet<NodeId> = cover.iter().copied().collect();
    edges.iter().all(|(u, v)| set.contains(u) || set.contains(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_star_takes_center() {
        let edges = vec![(0, 1), (0, 2), (0, 3), (0, 4)];
        let cover = greedy_cover(&edges);
        assert_eq!(cover, vec![0]);
    }

    #[test]
    fn greedy_path_is_small() {
        // Path 0-1-2-3-4: optimal cover {1,3} size 2.
        let edges = vec![(0, 1), (1, 2), (2, 3), (3, 4)];
        let cover = greedy_cover(&edges);
        assert!(is_cover(&edges, &cover));
        assert!(cover.len() <= 2, "{cover:?}");
    }

    #[test]
    fn matching_cover_at_most_double() {
        let edges = vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)];
        let cover = matching_cover(&edges);
        assert!(is_cover(&edges, &cover));
        // Optimal is 3 (e.g. {1, 3, 5} covers ... actually {1,3,4}); 2-approx <= 6.
        assert!(cover.len() <= 6);
    }

    #[test]
    fn empty_edges() {
        assert!(greedy_cover(&[]).is_empty());
        assert!(matching_cover(&[]).is_empty());
    }

    #[test]
    fn random_edge_sets_always_covered() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..25 {
            let n = rng.random_range(2..40u32);
            let m = rng.random_range(1..120usize);
            let edges: Vec<(NodeId, NodeId)> = (0..m)
                .filter_map(|_| {
                    let u = rng.random_range(0..n);
                    let v = rng.random_range(0..n);
                    (u != v).then_some((u, v))
                })
                .collect();
            let g = greedy_cover(&edges);
            let m2 = matching_cover(&edges);
            assert!(is_cover(&edges, &g));
            assert!(is_cover(&edges, &m2));
            // Greedy never exceeds the 2-approx by much in practice; just
            // sanity-bound both by the trivial cover.
            let touched: std::collections::HashSet<_> =
                edges.iter().flat_map(|&(u, v)| [u, v]).collect();
            assert!(g.len() <= touched.len());
            assert!(m2.len() <= touched.len());
        }
    }
}
