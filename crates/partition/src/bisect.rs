//! Greedy graph-growing initial bisection (the METIS GGGP scheme).
//!
//! On the coarsest graph a region is grown from a random seed node, always
//! absorbing the frontier node with the highest gain (cut-weight decrease),
//! until the region holds the target fraction of total node weight. Several
//! attempts are made and the best cut wins.

use crate::work::WorkGraph;
use ppr_graph::NodeId;
use rand::rngs::StdRng;
use std::collections::BinaryHeap;

/// Grow one region to `target_weight`. Returns 0/1 labels (region = 0).
pub fn grow_bisection(wg: &WorkGraph, target_weight: u64, rng: &mut StdRng) -> Vec<u32> {
    let n = wg.n();
    let mut labels = vec![1u32; n];
    if n == 0 || target_weight == 0 {
        return labels;
    }

    // gain[v] = (edge weight to region) - (edge weight to non-region).
    // Lazy max-heap: stale entries are skipped by comparing stored gain.
    let mut gain = vec![i64::MIN; n];
    let mut heap: BinaryHeap<(i64, NodeId)> = BinaryHeap::new();
    let mut in_region = vec![false; n];
    let mut region_weight = 0u64;

    let seed = crate::coarsen::random_node(n, rng);
    let mut pending_seed = Some(seed);

    while region_weight < target_weight {
        let v = loop {
            match heap.pop() {
                Some((g, v)) => {
                    if in_region[v as usize] || g != gain[v as usize] {
                        continue; // stale
                    }
                    break v;
                }
                None => {
                    // Frontier exhausted (disconnected component filled or
                    // fresh start): seed a new random untouched node.
                    let s = pending_seed.take().unwrap_or_else(|| {
                        let mut s = crate::coarsen::random_node(n, rng);
                        while in_region[s as usize] {
                            s = crate::coarsen::random_node(n, rng);
                        }
                        s
                    });
                    if in_region[s as usize] {
                        continue;
                    }
                    break s;
                }
            }
        };

        in_region[v as usize] = true;
        labels[v as usize] = 0;
        region_weight += wg.vwgt[v as usize] as u64;

        for (w, ew) in wg.neighbors(v) {
            if in_region[w as usize] {
                continue;
            }
            let g = if gain[w as usize] == i64::MIN {
                // First touch: all its edges currently point outside except
                // the one to v.
                let tot: i64 = wg.neighbors(w).map(|(_, e)| e as i64).sum();
                2 * ew as i64 - tot
            } else {
                gain[w as usize] + 2 * ew as i64
            };
            gain[w as usize] = g;
            heap.push((g, w));
        }
    }
    labels
}

/// Best-of-`tries` initial bisection at `target_weight` for side 0.
pub fn initial_bisection(
    wg: &WorkGraph,
    target_weight: u64,
    tries: u32,
    rng: &mut StdRng,
) -> Vec<u32> {
    let mut best: Option<(u64, Vec<u32>)> = None;
    for _ in 0..tries.max(1) {
        let labels = grow_bisection(wg, target_weight, rng);
        let cut = wg.cut(&labels);
        if best.as_ref().map(|(c, _)| cut < *c).unwrap_or(true) {
            best = Some((cut, labels));
        }
    }
    best.unwrap().1
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_graph::GraphBuilder;
    use rand::SeedableRng;

    /// Two 10-cliques joined by one edge: the ideal bisection cuts it.
    fn two_cliques() -> WorkGraph {
        let mut b = GraphBuilder::new(20);
        for base in [0u32, 10] {
            for i in 0..10 {
                for j in 0..10 {
                    if i != j {
                        b.push_edge(base + i, base + j);
                    }
                }
            }
        }
        b.push_edge(0, 10);
        WorkGraph::from_graph(&b.build())
    }

    #[test]
    fn finds_the_obvious_cut() {
        let wg = two_cliques();
        let mut rng = StdRng::seed_from_u64(7);
        let labels = initial_bisection(&wg, 10, 8, &mut rng);
        let cut = wg.cut(&labels);
        assert_eq!(cut, 1, "labels: {labels:?}");
        // Both sides populated with 10 nodes each.
        let left = labels.iter().filter(|&&l| l == 0).count();
        assert_eq!(left, 10);
    }

    #[test]
    fn respects_target_weight_approximately() {
        let wg = two_cliques();
        let mut rng = StdRng::seed_from_u64(9);
        let labels = grow_bisection(&wg, 5, &mut rng);
        let left_w: u64 = labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == 0)
            .map(|(v, _)| wg.vwgt[v] as u64)
            .sum();
        // Growth stops as soon as the target is reached; unit weights mean
        // it lands exactly.
        assert_eq!(left_w, 5);
    }

    #[test]
    fn handles_disconnected_graphs() {
        // Two disjoint 4-cycles.
        let mut b = GraphBuilder::new(8);
        for base in [0u32, 4] {
            for i in 0..4 {
                b.push_edge(base + i, base + (i + 1) % 4);
                b.push_edge(base + (i + 1) % 4, base + i);
            }
        }
        let wg = WorkGraph::from_graph(&b.build());
        let mut rng = StdRng::seed_from_u64(3);
        let labels = grow_bisection(&wg, 4, &mut rng);
        assert_eq!(labels.iter().filter(|&&l| l == 0).count(), 4);
    }

    #[test]
    fn zero_target_leaves_all_right() {
        let wg = two_cliques();
        let mut rng = StdRng::seed_from_u64(1);
        let labels = grow_bisection(&wg, 0, &mut rng);
        assert!(labels.iter().all(|&l| l == 1));
    }
}
