//! Hopcroft–Karp maximum bipartite matching and König minimum vertex cover.
//!
//! The paper (§4.2) selects hub nodes for a 2-way cut as a **minimum**
//! vertex cover of the cut edges, which form a bipartite graph (one side
//! per part). By König's theorem the minimum cover equals the maximum
//! matching and is extracted from the alternating-path reachability set.

/// Bipartite graph: left vertices `0..nl`, right vertices `0..nr`, edges
/// stored as adjacency from the left side.
#[derive(Clone, Debug, Default)]
pub struct Bipartite {
    adj: Vec<Vec<u32>>,
    nr: usize,
}

const NIL: u32 = u32::MAX;

impl Bipartite {
    /// Create with `nl` left and `nr` right vertices.
    pub fn new(nl: usize, nr: usize) -> Self {
        Self {
            adj: vec![Vec::new(); nl],
            nr,
        }
    }

    /// Add edge (left `l`, right `r`).
    pub fn add_edge(&mut self, l: u32, r: u32) {
        debug_assert!((l as usize) < self.adj.len() && (r as usize) < self.nr);
        self.adj[l as usize].push(r);
    }

    /// Number of left vertices.
    pub fn nl(&self) -> usize {
        self.adj.len()
    }

    /// Maximum matching: returns (`match_l`, `match_r`) with `NIL = u32::MAX`
    /// for unmatched, plus the matching size.
    pub fn hopcroft_karp(&self) -> (Vec<u32>, Vec<u32>, usize) {
        let nl = self.adj.len();
        let nr = self.nr;
        let mut match_l = vec![NIL; nl];
        let mut match_r = vec![NIL; nr];
        let mut dist = vec![u32::MAX; nl];
        let mut size = 0usize;

        loop {
            // BFS: layer unmatched left vertices at distance 0.
            let mut queue: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
            for l in 0..nl as u32 {
                if match_l[l as usize] == NIL {
                    dist[l as usize] = 0;
                    queue.push_back(l);
                } else {
                    dist[l as usize] = u32::MAX;
                }
            }
            let mut found_augmenting = false;
            while let Some(l) = queue.pop_front() {
                for &r in &self.adj[l as usize] {
                    let nl2 = match_r[r as usize];
                    if nl2 == NIL {
                        found_augmenting = true;
                    } else if dist[nl2 as usize] == u32::MAX {
                        dist[nl2 as usize] = dist[l as usize] + 1;
                        queue.push_back(nl2);
                    }
                }
            }
            if !found_augmenting {
                break;
            }
            // DFS augmentation along layered structure.
            fn dfs(
                l: u32,
                adj: &[Vec<u32>],
                match_l: &mut [u32],
                match_r: &mut [u32],
                dist: &mut [u32],
            ) -> bool {
                for &r in &adj[l as usize] {
                    let nl2 = match_r[r as usize];
                    if nl2 == NIL
                        || (dist[nl2 as usize] == dist[l as usize] + 1
                            && dfs(nl2, adj, match_l, match_r, dist))
                    {
                        match_l[l as usize] = r;
                        match_r[r as usize] = l;
                        return true;
                    }
                }
                dist[l as usize] = u32::MAX;
                false
            }
            for l in 0..nl as u32 {
                if match_l[l as usize] == NIL
                    && dfs(l, &self.adj, &mut match_l, &mut match_r, &mut dist)
                {
                    size += 1;
                }
            }
        }
        (match_l, match_r, size)
    }

    /// Minimum vertex cover via König's theorem. Returns (left cover,
    /// right cover); their sizes sum to the maximum matching size.
    pub fn min_vertex_cover(&self) -> (Vec<u32>, Vec<u32>) {
        let (match_l, match_r, _) = self.hopcroft_karp();
        let nl = self.adj.len();
        let nr = self.nr;

        // Z = vertices reachable from unmatched left vertices along
        // alternating paths (unmatched edge L->R, matched edge R->L).
        let mut z_l = vec![false; nl];
        let mut z_r = vec![false; nr];
        let mut stack: Vec<u32> = (0..nl as u32)
            .filter(|&l| match_l[l as usize] == NIL)
            .collect();
        for &l in &stack {
            z_l[l as usize] = true;
        }
        while let Some(l) = stack.pop() {
            for &r in &self.adj[l as usize] {
                if match_l[l as usize] == r || z_r[r as usize] {
                    continue; // matched edge or already visited
                }
                z_r[r as usize] = true;
                let l2 = match_r[r as usize];
                if l2 != NIL && !z_l[l2 as usize] {
                    z_l[l2 as usize] = true;
                    stack.push(l2);
                }
            }
        }
        let cover_l: Vec<u32> = (0..nl as u32).filter(|&l| !z_l[l as usize] && match_l[l as usize] != NIL).collect();
        let cover_r: Vec<u32> = (0..nr as u32).filter(|&r| z_r[r as usize]).collect();
        (cover_l, cover_r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn covers_all(b: &Bipartite, cl: &[u32], cr: &[u32]) -> bool {
        let sl: std::collections::HashSet<_> = cl.iter().collect();
        let sr: std::collections::HashSet<_> = cr.iter().collect();
        for l in 0..b.nl() as u32 {
            for &r in &b.adj[l as usize] {
                if !sl.contains(&l) && !sr.contains(&r) {
                    return false;
                }
            }
        }
        true
    }

    #[test]
    fn perfect_matching_on_cycle() {
        // L0-R0, L0-R1, L1-R1, L1-R0: perfect matching size 2.
        let mut b = Bipartite::new(2, 2);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        b.add_edge(1, 1);
        b.add_edge(1, 0);
        let (_, _, size) = b.hopcroft_karp();
        assert_eq!(size, 2);
    }

    #[test]
    fn star_needs_one_cover_vertex() {
        // L0 connected to R0..R4: matching 1, cover = {L0}.
        let mut b = Bipartite::new(1, 5);
        for r in 0..5 {
            b.add_edge(0, r);
        }
        let (cl, cr) = b.min_vertex_cover();
        assert_eq!(cl.len() + cr.len(), 1);
        assert!(covers_all(&b, &cl, &cr));
    }

    #[test]
    fn koenig_equals_matching_size() {
        let mut b = Bipartite::new(4, 4);
        let edges = [(0, 0), (0, 1), (1, 0), (2, 2), (3, 2), (3, 3)];
        for (l, r) in edges {
            b.add_edge(l, r);
        }
        let (_, _, m) = b.hopcroft_karp();
        let (cl, cr) = b.min_vertex_cover();
        assert_eq!(cl.len() + cr.len(), m);
        assert!(covers_all(&b, &cl, &cr));
    }

    #[test]
    fn empty_graph() {
        let b = Bipartite::new(3, 3);
        let (_, _, m) = b.hopcroft_karp();
        assert_eq!(m, 0);
        let (cl, cr) = b.min_vertex_cover();
        assert!(cl.is_empty() && cr.is_empty());
    }

    #[test]
    fn random_instances_cover_validity() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..30 {
            let nl = rng.random_range(1..20);
            let nr = rng.random_range(1..20);
            let mut b = Bipartite::new(nl, nr);
            let m = rng.random_range(0..60);
            for _ in 0..m {
                b.add_edge(
                    rng.random_range(0..nl) as u32,
                    rng.random_range(0..nr) as u32,
                );
            }
            let (_, _, msize) = b.hopcroft_karp();
            let (cl, cr) = b.min_vertex_cover();
            assert_eq!(cl.len() + cr.len(), msize, "trial {trial}");
            assert!(covers_all(&b, &cl, &cr), "trial {trial}");
        }
    }
}
