//! The multilevel bisection driver: coarsen → initial partition → project
//! and refine back up the ladder.

use crate::bisect::initial_bisection;
use crate::coarsen::coarsen_ladder;
use crate::refine::{force_balance, refine_bisection, BalanceWindow};
use crate::work::WorkGraph;
use crate::PartitionConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Multilevel bisection of `wg`, putting roughly `frac` of the total node
/// weight on side 0. Returns 0/1 labels.
pub fn bisect_multilevel(wg: &WorkGraph, frac: f64, cfg: &PartitionConfig) -> Vec<u32> {
    assert!(frac > 0.0 && frac < 1.0, "frac must be in (0,1)");
    let n = wg.n();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![0];
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let total = wg.total_weight();
    let window = BalanceWindow::around(total, frac, cfg.imbalance);
    let target = (frac * total as f64).round() as u64;

    let (graphs, maps) = coarsen_ladder(wg, cfg.coarsen_until, &mut rng);

    // Initial partition on the coarsest level.
    let coarsest = graphs.last().unwrap();
    let mut labels = initial_bisection(coarsest, target, cfg.init_tries, &mut rng);
    force_balance(coarsest, &mut labels, window);
    refine_bisection(coarsest, &mut labels, window, cfg.fm_passes);

    // Uncoarsen: project and refine at every finer level.
    for lvl in (0..maps.len()).rev() {
        let fine = &graphs[lvl];
        let map = &maps[lvl];
        let mut fine_labels = vec![0u32; fine.n()];
        for v in 0..fine.n() {
            fine_labels[v] = labels[map[v] as usize];
        }
        labels = fine_labels;
        force_balance(fine, &mut labels, window);
        refine_bisection(fine, &mut labels, window, cfg.fm_passes);
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_graph::generators::{hierarchical_sbm, HsbmConfig};
    use ppr_graph::GraphBuilder;

    #[test]
    fn splits_two_communities() {
        let mut b = GraphBuilder::new(40);
        for base in [0u32, 20] {
            for i in 0..20 {
                for j in 1..4 {
                    b.push_edge(base + i, base + (i + j) % 20);
                }
            }
        }
        b.push_edge(0, 20);
        b.push_edge(20, 0);
        let wg = WorkGraph::from_graph(&b.build());
        let labels = bisect_multilevel(&wg, 0.5, &PartitionConfig::default());
        let cut = wg.cut(&labels);
        assert!(cut <= 2, "cut = {cut}");
        let left = labels.iter().filter(|&&l| l == 0).count();
        assert!((15..=25).contains(&left), "left = {left}");
    }

    #[test]
    fn respects_fraction() {
        let g = hierarchical_sbm(
            &HsbmConfig {
                nodes: 600,
                ..Default::default()
            },
            3,
        );
        let wg = WorkGraph::from_graph(&g);
        let cfg = PartitionConfig::default();
        let labels = bisect_multilevel(&wg, 0.25, &cfg);
        let left = labels.iter().filter(|&&l| l == 0).count() as f64;
        let frac = left / 600.0;
        assert!((0.2..=0.32).contains(&frac), "frac = {frac}");
    }

    #[test]
    fn cut_is_small_on_community_graph() {
        let g = hierarchical_sbm(
            &HsbmConfig {
                nodes: 1000,
                depth: 4,
                locality: 0.93,
                ..Default::default()
            },
            11,
        );
        let wg = WorkGraph::from_graph(&g);
        let labels = bisect_multilevel(&wg, 0.5, &PartitionConfig::default());
        let cut = wg.cut(&labels);
        let total_w: u64 = wg.adjwgt.iter().map(|&w| w as u64).sum::<u64>() / 2;
        // Multilevel should find a cut far below a random split (~50%).
        assert!(
            (cut as f64) < 0.15 * total_w as f64,
            "cut {cut} of {total_w}"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = hierarchical_sbm(
            &HsbmConfig {
                nodes: 300,
                ..Default::default()
            },
            5,
        );
        let wg = WorkGraph::from_graph(&g);
        let cfg = PartitionConfig::default();
        let a = bisect_multilevel(&wg, 0.5, &cfg);
        let b = bisect_multilevel(&wg, 0.5, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn trivial_sizes() {
        let mut edges: Vec<(u32, u32, u32)> = vec![];
        let wg = WorkGraph::from_weighted_edges(1, &mut edges, vec![1]);
        assert_eq!(bisect_multilevel(&wg, 0.5, &PartitionConfig::default()), vec![0]);
    }
}
