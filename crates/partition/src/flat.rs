//! Flat m-way partition structure — what the GPA algorithm (§3) consumes.

use crate::kway::partition_graph_kway;
use crate::separator::{select_hubs, verify_separation, CoverAlgorithm};
use crate::PartitionConfig;
use ppr_graph::{CsrGraph, NodeId};

/// A graph split into `m` disjoint subgraphs separated by hub nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlatPartition {
    /// Hub nodes (sorted): a vertex cover of all cut edges.
    pub hubs: Vec<NodeId>,
    /// Non-hub members of each part, sorted.
    pub subgraphs: Vec<Vec<NodeId>>,
    /// Per node: `Some(part)` for non-hub nodes, `None` for hubs.
    pub part_of: Vec<Option<u32>>,
}

impl FlatPartition {
    /// True if `v` is a hub.
    pub fn is_hub(&self, v: NodeId) -> bool {
        self.part_of[v as usize].is_none()
    }

    /// Number of parts.
    pub fn parts(&self) -> usize {
        self.subgraphs.len()
    }
}

/// Partition `g` into `m` balanced subgraphs and pick hub nodes from the
/// cut edges (paper §3.1: "the bridging nodes between subgraphs form the
/// hub nodes").
pub fn flat_partition(
    g: &CsrGraph,
    m: usize,
    cover: CoverAlgorithm,
    cfg: &PartitionConfig,
) -> FlatPartition {
    let n = g.node_count();
    let labels = partition_graph_kway(g, m, cfg);
    let members: Vec<NodeId> = (0..n as NodeId).collect();
    let hubs = select_hubs(g, &members, &labels, cover);
    debug_assert!(verify_separation(g, &members, &labels, &hubs));

    let mut part_of: Vec<Option<u32>> = labels.iter().map(|&l| Some(l)).collect();
    for &h in &hubs {
        part_of[h as usize] = None;
    }
    let mut subgraphs = vec![Vec::new(); m];
    for v in 0..n as NodeId {
        if let Some(p) = part_of[v as usize] {
            subgraphs[p as usize].push(v);
        }
    }
    FlatPartition {
        hubs,
        subgraphs,
        part_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_graph::generators::{hierarchical_sbm, HsbmConfig};

    fn sample() -> CsrGraph {
        hierarchical_sbm(
            &HsbmConfig {
                nodes: 400,
                depth: 4,
                locality: 0.92,
                ..Default::default()
            },
            123,
        )
    }

    #[test]
    fn partitions_cover_all_nodes_disjointly() {
        let g = sample();
        let fp = flat_partition(&g, 4, CoverAlgorithm::Greedy, &PartitionConfig::default());
        let mut seen = vec![0u8; 400];
        for &h in &fp.hubs {
            seen[h as usize] += 1;
        }
        for part in &fp.subgraphs {
            for &v in part {
                seen[v as usize] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "every node exactly once");
    }

    #[test]
    fn separation_invariant_holds() {
        let g = sample();
        for m in [2usize, 3, 6] {
            let fp = flat_partition(&g, m, CoverAlgorithm::Greedy, &PartitionConfig::default());
            // No edge may connect non-hub nodes of different parts.
            for (u, v) in g.edges() {
                if let (Some(pu), Some(pv)) = (fp.part_of[u as usize], fp.part_of[v as usize]) {
                    assert_eq!(pu, pv, "edge ({u},{v}) crosses parts without hub");
                }
            }
        }
    }

    #[test]
    fn hub_count_is_small_on_community_graph() {
        let g = sample();
        let fp = flat_partition(&g, 2, CoverAlgorithm::KonigExact, &PartitionConfig::default());
        assert!(
            fp.hubs.len() < g.node_count() / 4,
            "|H| = {} of {}",
            fp.hubs.len(),
            g.node_count()
        );
    }

    #[test]
    fn konig_not_larger_than_greedy() {
        let g = sample();
        let k = flat_partition(&g, 2, CoverAlgorithm::KonigExact, &PartitionConfig::default());
        let gr = flat_partition(&g, 2, CoverAlgorithm::Greedy, &PartitionConfig::default());
        assert!(k.hubs.len() <= gr.hubs.len() + 1, "{} vs {}", k.hubs.len(), gr.hubs.len());
    }

    #[test]
    fn single_part_no_hubs() {
        let g = sample();
        let fp = flat_partition(&g, 1, CoverAlgorithm::Greedy, &PartitionConfig::default());
        assert!(fp.hubs.is_empty());
        assert_eq!(fp.subgraphs[0].len(), 400);
    }
}
