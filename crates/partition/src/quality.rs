//! Partition-quality diagnostics.
//!
//! Exactness never depends on these numbers (Theorems 1/3), but space and
//! offline cost do (§3.2/§4.5): smaller separators and better balance mean
//! smaller stored vectors. These helpers quantify what the multilevel
//! partitioner achieved and power the König-vs-greedy ablation bench.

use crate::flat::FlatPartition;
use crate::hierarchy::Hierarchy;
use ppr_graph::{CsrGraph, NodeId};

/// Quality summary of a flat partition.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PartitionQuality {
    /// Number of parts.
    pub parts: usize,
    /// Hub (separator) nodes.
    pub hubs: usize,
    /// Directed edges with endpoints in different parts (pre-separator).
    pub cut_edges: usize,
    /// Largest part size divided by ideal part size.
    pub balance: f64,
    /// Hub nodes as a fraction of all nodes.
    pub hub_fraction: f64,
}

/// Measure a flat partition against its graph.
pub fn flat_quality(g: &CsrGraph, fp: &FlatPartition) -> PartitionQuality {
    let n = g.node_count();
    let parts = fp.parts();
    let mut cut = 0usize;
    for (u, v) in g.edges() {
        // A cut edge joins different parts, counting hubs as belonging to
        // their (pre-removal) side — approximate by treating hub edges as
        // cut only when both endpoints are non-hub and differ.
        if let (Some(pu), Some(pv)) = (fp.part_of[u as usize], fp.part_of[v as usize]) {
            if pu != pv {
                cut += 1;
            }
        } else {
            cut += 1; // incident to a separator node
        }
    }
    let largest = fp.subgraphs.iter().map(Vec::len).max().unwrap_or(0);
    let ideal = (n - fp.hubs.len()) as f64 / parts.max(1) as f64;
    PartitionQuality {
        parts,
        hubs: fp.hubs.len(),
        cut_edges: cut,
        balance: if ideal > 0.0 {
            largest as f64 / ideal
        } else {
            1.0
        },
        hub_fraction: fp.hubs.len() as f64 / n.max(1) as f64,
    }
}

/// Quality summary of a hierarchy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HierarchyQuality {
    /// Levels in the hierarchy.
    pub depth: u32,
    /// Number of leaf subgraphs.
    pub leaves: usize,
    /// Largest leaf size.
    pub max_leaf: usize,
    /// Total hubs across levels.
    pub total_hubs: usize,
    /// Hub fraction of |V|.
    pub hub_fraction: f64,
    /// Mean children per internal subgraph.
    pub mean_fanout: f64,
}

/// Measure a hierarchy.
pub fn hierarchy_quality(g: &CsrGraph, h: &Hierarchy) -> HierarchyQuality {
    let leaves: Vec<usize> = h.leaves().collect();
    let max_leaf = leaves
        .iter()
        .map(|&l| h.nodes[l].members.len())
        .max()
        .unwrap_or(0);
    let internal: Vec<&crate::hierarchy::SubgraphNode> =
        h.nodes.iter().filter(|n| !n.is_leaf()).collect();
    let mean_fanout = if internal.is_empty() {
        0.0
    } else {
        internal.iter().map(|n| n.children.len()).sum::<usize>() as f64 / internal.len() as f64
    };
    HierarchyQuality {
        depth: h.depth,
        leaves: leaves.len(),
        max_leaf,
        total_hubs: h.total_hubs(),
        hub_fraction: h.total_hubs() as f64 / g.node_count().max(1) as f64,
        mean_fanout,
    }
}

/// Count directed edges crossing a labelled split of all nodes (utility
/// shared by experiments).
pub fn directed_cut(g: &CsrGraph, labels: &[u32]) -> usize {
    g.edges()
        .filter(|&(u, v)| labels[u as usize] != labels[v as usize])
        .count()
}

/// Separator verification over an entire hierarchy: true iff every
/// internal subgraph's hubs cover all child-crossing edges.
pub fn verify_hierarchy_separation(g: &CsrGraph, h: &Hierarchy) -> bool {
    for node in &h.nodes {
        if node.is_leaf() {
            continue;
        }
        let child_of = |v: NodeId| -> Option<usize> {
            node.children
                .iter()
                .position(|&c| h.nodes[c].members.binary_search(&v).is_ok())
        };
        for &u in &node.members {
            if node.hubs.binary_search(&u).is_ok() {
                continue;
            }
            for &v in g.out_neighbors(u) {
                if node.members.binary_search(&v).is_err() || node.hubs.binary_search(&v).is_ok() {
                    continue;
                }
                if child_of(u) != child_of(v) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::flat_partition;
    use crate::hierarchy::HierarchyConfig;
    use crate::separator::CoverAlgorithm;
    use crate::PartitionConfig;
    use ppr_graph::generators::{hierarchical_sbm, HsbmConfig};

    fn sample() -> CsrGraph {
        hierarchical_sbm(
            &HsbmConfig {
                nodes: 500,
                depth: 4,
                locality: 0.9,
                ..Default::default()
            },
            3,
        )
    }

    #[test]
    fn flat_quality_reports_sane_numbers() {
        let g = sample();
        let fp = flat_partition(&g, 4, CoverAlgorithm::Greedy, &PartitionConfig::default());
        let q = flat_quality(&g, &fp);
        assert_eq!(q.parts, 4);
        assert!(q.hubs > 0);
        assert!(q.balance >= 1.0 && q.balance < 2.0, "balance {}", q.balance);
        assert!(q.hub_fraction < 0.5);
        assert!(q.cut_edges > 0);
    }

    #[test]
    fn hierarchy_quality_consistent_with_hierarchy() {
        let g = sample();
        let h = Hierarchy::build(&g, &HierarchyConfig::default());
        let q = hierarchy_quality(&g, &h);
        assert_eq!(q.depth, h.depth);
        assert_eq!(q.total_hubs, h.total_hubs());
        assert!(q.leaves >= 2);
        assert!(q.max_leaf > 0);
        assert!(q.mean_fanout >= 2.0 - 1e-9);
    }

    #[test]
    fn hierarchy_separation_verified() {
        let g = sample();
        let h = Hierarchy::build(&g, &HierarchyConfig::default());
        assert!(verify_hierarchy_separation(&g, &h));
    }

    #[test]
    fn directed_cut_counts() {
        let g = ppr_graph::csr::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(directed_cut(&g, &[0, 0, 1, 1]), 1);
        assert_eq!(directed_cut(&g, &[0, 1, 0, 1]), 3);
    }

    #[test]
    fn konig_yields_no_more_hubs_than_matching() {
        // The exact cover can never exceed the 2-approximation.
        let g = sample();
        let k = flat_partition(&g, 2, CoverAlgorithm::KonigExact, &PartitionConfig::default());
        let m = flat_partition(&g, 2, CoverAlgorithm::Matching, &PartitionConfig::default());
        assert!(
            k.hubs.len() <= m.hubs.len(),
            "König {} vs matching {}",
            k.hubs.len(),
            m.hubs.len()
        );
    }
}
