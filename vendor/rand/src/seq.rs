//! Sequence-related randomness (`rand::seq` subset).

use crate::RngCore;

/// Extension trait for slices: in-place shuffle and random choice.
pub trait SliceRandom {
    /// Element type of the sequence.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get((rng.next_u64() % self.len() as u64) as usize)
        }
    }
}
