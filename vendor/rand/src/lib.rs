//! Offline stand-in for the `rand` crate (0.9-style API).
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the subset of `rand` the workspace actually uses:
//!
//! * [`rngs::StdRng`] — a seedable xoshiro256++ generator (not the real
//!   `StdRng`'s ChaCha12, but a high-quality 64-bit PRNG; all callers
//!   seed via [`SeedableRng::seed_from_u64`], so only determinism within
//!   this workspace matters, not cross-crate stream compatibility);
//! * [`Rng::random`] / [`Rng::random_range`] / [`Rng::random_bool`];
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`].
//!
//! Distribution details (uniform floats via the 53-bit mantissa trick,
//! modulo-reduced integer ranges) favour simplicity; the tiny modulo bias
//! is irrelevant at the range sizes used by the generators and tests.

#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A value sampled from the "standard" distribution of `T`
    /// (uniform over the type, or `[0, 1)` for floats).
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// A value uniformly distributed in `range`. Panics on empty ranges.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable uniformly "by default" via [`Rng::random`].
pub trait StandardUniform: Sized {
    /// Sample one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range types accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range. Panics if empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardUniform>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Seedable generators. Only the `u64` entry point the workspace uses.
pub trait SeedableRng: Sized {
    /// Deterministically construct the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}
