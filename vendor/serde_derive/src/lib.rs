//! No-op derive macros for the offline `serde` stand-in.
//!
//! The sibling `serde` stub blanket-implements its marker traits for all
//! types, so these derives only need to exist for `#[derive(Serialize,
//! Deserialize)]` to parse; they expand to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
