//! Offline stand-in for `criterion`.
//!
//! Provides the API subset the workspace's `kernels` bench uses —
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — backed by a plain
//! wall-clock runner: each benchmark runs `sample_size` samples after one
//! warm-up and reports min / median / mean to stdout. No statistical
//! analysis, plots, or baselines.

#![warn(missing_docs)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevent the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortises setup cost. The stub runs one routine
/// call per setup call regardless; the variants exist for API parity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Fresh input for every routine invocation.
    PerIteration,
    /// Small inputs (criterion would batch many per allocation).
    SmallInput,
    /// Large inputs (criterion would batch few per allocation).
    LargeInput,
}

/// Benchmark driver handed to `bench_function` closures.
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            times: Vec::with_capacity(samples),
        }
    }

    /// Time `routine` once per sample (plus one untimed warm-up).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.times.push(start.elapsed());
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup is untimed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.times.push(start.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn report(id: &str, times: &mut [Duration]) {
    if times.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    times.sort_unstable();
    let min = times[0];
    let median = times[times.len() / 2];
    let mean = times.iter().sum::<Duration>() / times.len() as u32;
    println!(
        "{id:<48} min {:>10}   median {:>10}   mean {:>10}   ({} samples)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
        times.len()
    );
}

/// Top-level benchmark registry (stub of `criterion::Criterion`).
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== bench group: {name} ==");
        BenchmarkGroup {
            name: name.to_string(),
            samples: self.default_samples,
            _parent: self,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.default_samples);
        f(&mut b);
        report(id, &mut b.times);
        self
    }
}

/// A group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.samples);
        f(&mut b);
        report(&format!("{}/{id}", self.name), &mut b.times);
        self
    }

    /// Finish the group (prints nothing extra in the stub).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
