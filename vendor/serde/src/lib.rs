//! Offline stand-in for `serde`.
//!
//! The workspace's real persistence lives in `ppr-core::persist` (a
//! self-contained little-endian format); `serde` appears only in derive
//! position on data types that may want external serialization later.
//! With no crates.io access, this stub keeps those derives compiling:
//! the traits are markers blanket-implemented for every type, and the
//! derive macros (re-exported from the sibling `serde_derive` stub)
//! expand to nothing.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}
