//! Collection strategies (`proptest::collection` subset).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use std::collections::BTreeMap;

/// A `Vec` of values from `element`, with length drawn from `size`.
pub fn vec<S, L>(element: S, size: L) -> VecStrategy<S, L>
where
    S: Strategy,
    L: Strategy<Value = usize>,
{
    VecStrategy { element, size }
}

/// See [`vec()`].
pub struct VecStrategy<S, L> {
    element: S,
    size: L,
}

impl<S, L> Strategy for VecStrategy<S, L>
where
    S: Strategy,
    L: Strategy<Value = usize>,
{
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = self.size.generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `BTreeMap` with up to `size` entries (duplicate keys collapse, as
/// in real proptest the size is a target, not a guarantee under
/// key collisions).
pub fn btree_map<K, V, L>(keys: K, values: V, size: L) -> BTreeMapStrategy<K, V, L>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
    L: Strategy<Value = usize>,
{
    BTreeMapStrategy { keys, values, size }
}

/// See [`btree_map`].
pub struct BTreeMapStrategy<K, V, L> {
    keys: K,
    values: V,
    size: L,
}

impl<K, V, L> Strategy for BTreeMapStrategy<K, V, L>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
    L: Strategy<Value = usize>,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut StdRng) -> BTreeMap<K::Value, V::Value> {
        let len = self.size.generate(rng);
        let mut map = BTreeMap::new();
        for _ in 0..len {
            map.insert(self.keys.generate(rng), self.values.generate(rng));
        }
        map
    }
}
