//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait with `prop_map` / `prop_flat_map`,
//! range and tuple strategies, [`collection::vec`] and
//! [`collection::btree_map`], the [`proptest!`] test macro with
//! `#![proptest_config(..)]`, and `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from the real crate, chosen for zero dependencies:
//!
//! * **No shrinking.** A failing case reports its seed and values but is
//!   not minimised.
//! * **Deterministic seeding.** Case `i` of every test runs from seed
//!   `PROPTEST_BASE_SEED + i` (env var, default 0), so failures reproduce
//!   exactly by rerunning the test.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;

pub use strategy::Strategy;

#[doc(hidden)]
pub use rand as __rand;

/// Runner configuration (the `cases` knob only).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    /// 64 cases, overridable by the `PROPTEST_CASES` environment variable
    /// (mirroring the real crate). Tests that want a deep-fuzzing budget
    /// under CI's scheduled run should use this default rather than a
    /// hard-coded `with_cases`, which always wins over the environment.
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Base seed for deterministic case generation (`PROPTEST_BASE_SEED`).
pub fn base_seed() -> u64 {
    std::env::var("PROPTEST_BASE_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests: each `#[test] fn name(arg in strategy, ..)`
/// becomes a normal `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $(#[test] fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let base = $crate::base_seed();
                for case in 0..config.cases {
                    let seed = base + case as u64;
                    let mut __ptrng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(seed);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __ptrng);)*
                    let result: ::core::result::Result<(), ::std::string::String> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(msg) = result {
                        panic!(
                            "proptest case failed (seed {seed}, case {case}/{}):\n{msg}",
                            config.cases
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Assert inside a `proptest!` body; failure reports the case seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err(
                format!("prop_assert failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                format!("prop_assert failed: {}: {}", stringify!($cond), format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (l, r) = (&$a, &$b);
        if l != r {
            return ::core::result::Result::Err(
                format!("prop_assert_eq failed: {:?} != {:?}", l, r));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$a, &$b);
        if l != r {
            return ::core::result::Result::Err(
                format!("prop_assert_eq failed: {:?} != {:?}: {}", l, r, format!($($fmt)+)));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (l, r) = (&$a, &$b);
        if l == r {
            return ::core::result::Result::Err(
                format!("prop_assert_ne failed: both sides are {:?}", l));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$a, &$b);
        if l == r {
            return ::core::result::Result::Err(
                format!("prop_assert_ne failed: both sides are {:?}: {}", l, format!($($fmt)+)));
        }
    }};
}
