//! The [`Strategy`] trait and combinators.

use rand::rngs::StdRng;
use rand::{Rng, SampleRange};
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// produces a value directly from the runner's RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds
    /// out of it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

impl<T> Strategy for Range<T>
where
    T: Copy,
    Range<T>: SampleRange<T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: Copy,
    RangeInclusive<T>: SampleRange<T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

/// A fixed value (`proptest::strategy::Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}
