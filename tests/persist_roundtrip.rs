//! Storage-tier exactness: save → load must be **bit-identical** for
//! both index types — every persisted artifact (base vectors, skeleton
//! columns, partition/hierarchy structure, machine placement, build
//! stats) survives the round-trip unchanged on any graph — and a server
//! **cold-started** from a persisted artifact must answer any request
//! stream bit-identically to one serving the freshly built in-memory
//! index. This is the storage twin of `tests/parallel_build.rs`: the
//! paper's precompute-once / serve-forever split only holds if the
//! "once" and the "forever" see exactly the same numbers.

use exact_ppr::core::gpa::{GpaBuildOptions, GpaIndex};
use exact_ppr::core::hgpa::{HgpaBuildOptions, HgpaIndex};
use exact_ppr::core::persist::{
    load_gpa, load_hgpa, load_index, save_gpa, save_hgpa, IndexKind, PersistedIndex,
};
use exact_ppr::core::sparse::SparseVector;
use exact_ppr::core::PprConfig;
use exact_ppr::graph::csr::from_edges;
use exact_ppr::graph::generators::{hierarchical_sbm, HsbmConfig};
use exact_ppr::graph::{CsrGraph, NodeId};
use exact_ppr::partition::HierarchyConfig;
use exact_ppr::serve::{ColdStart, PprServer, Request, Response, ServeConfig, ShardedPprServer};
use proptest::prelude::*;

/// Strategy: a random directed graph with 12..=80 nodes.
fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (12usize..=80).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 1..(n * 4));
        edges.prop_map(move |es| {
            let filtered: Vec<(u32, u32)> = es.into_iter().filter(|(u, v)| u != v).collect();
            from_edges(n, &filtered)
        })
    })
}

fn tight() -> PprConfig {
    PprConfig {
        epsilon: 1e-9,
        ..Default::default()
    }
}

/// Vectors equal down to the f64 bit pattern (stricter than `==`, which
/// would accept `-0.0 == 0.0`).
fn bits_equal(a: &SparseVector, b: &SparseVector) -> bool {
    a.nnz() == b.nnz()
        && a.iter()
            .zip(b.iter())
            .all(|((i, x), (j, y))| i == j && x.to_bits() == y.to_bits())
}

fn all_bits_equal(a: &[SparseVector], b: &[SparseVector]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| bits_equal(x, y))
}

/// Responses equal down to the bit pattern of every score.
fn responses_bits_equal(a: &Response, b: &Response) -> bool {
    match (a, b) {
        (Response::Ppv(x), Response::Ppv(y)) => bits_equal(x, y),
        (Response::TopK(x), Response::TopK(y)) => {
            x.len() == y.len()
                && x.iter()
                    .zip(y)
                    .all(|((i, s), (j, t))| i == j && s.to_bits() == t.to_bits())
        }
        _ => false,
    }
}

/// Turn raw proptest triples into the serving request mix.
fn requests_from(n: usize, raw: &[(u32, u32, u8)]) -> Vec<Request> {
    raw.iter()
        .map(|&(a, b, shape)| {
            let a = a % n as u32;
            let b = b % n as u32;
            match shape % 5 {
                0 => Request::TopK { source: a, k: 10 },
                1 => Request::Preference(if a == b {
                    vec![(a, 1.0)]
                } else {
                    vec![(a, 0.7), (b, 0.3)]
                }),
                _ => Request::Ppv(a),
            }
        })
        .collect()
}

fn gpa_roundtrip(g: &CsrGraph, machines: usize) -> Result<(), String> {
    let built = GpaIndex::build(
        g,
        &tight(),
        &GpaBuildOptions {
            machines,
            ..Default::default()
        },
    );
    let mut buf = Vec::new();
    save_gpa(&built, &mut buf).map_err(|e| format!("save: {e}"))?;
    let loaded = load_gpa(buf.as_slice()).map_err(|e| format!("load: {e}"))?;

    if loaded.partition() != built.partition() {
        return Err("partition diverged".into());
    }
    if !all_bits_equal(loaded.base_vectors(), built.base_vectors()) {
        return Err("base vectors not bit-identical".into());
    }
    if !all_bits_equal(loaded.skeleton_columns(), built.skeleton_columns()) {
        return Err("skeleton columns not bit-identical".into());
    }
    if loaded.machine_of_hub() != built.machine_of_hub()
        || loaded.machine_of_part() != built.machine_of_part()
    {
        return Err("machine placement diverged".into());
    }
    if loaded.config() != built.config() || loaded.machines() != built.machines() {
        return Err("config diverged".into());
    }
    for u in 0..g.node_count() as NodeId {
        if loaded.machine_of_node(u) != built.machine_of_node(u) {
            return Err(format!("machine_of_node({u}) diverged"));
        }
    }
    Ok(())
}

fn hgpa_roundtrip(g: &CsrGraph, machines: usize) -> Result<(), String> {
    let built = HgpaIndex::build(
        g,
        &tight(),
        &HgpaBuildOptions {
            machines,
            hierarchy: HierarchyConfig {
                max_leaf_size: 16,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let mut buf = Vec::new();
    save_hgpa(&built, &mut buf).map_err(|e| format!("save: {e}"))?;
    let loaded = load_hgpa(buf.as_slice()).map_err(|e| format!("load: {e}"))?;

    if loaded.hierarchy() != built.hierarchy() {
        return Err("hierarchy diverged".into());
    }
    if loaded.hub_ids() != built.hub_ids() {
        return Err("hub ids diverged".into());
    }
    if !all_bits_equal(loaded.base_vectors(), built.base_vectors()) {
        return Err("base vectors not bit-identical".into());
    }
    if !all_bits_equal(loaded.skeleton_columns(), built.skeleton_columns()) {
        return Err("skeleton columns not bit-identical".into());
    }
    if loaded.machine_of_hub() != built.machine_of_hub()
        || loaded.machine_of_base() != built.machine_of_base()
    {
        return Err("machine placement diverged".into());
    }
    if loaded.stats() != built.stats() {
        return Err(format!(
            "build stats diverged: {:?} vs {:?}",
            loaded.stats(),
            built.stats()
        ));
    }
    if loaded.config() != built.config() || loaded.machines() != built.machines() {
        return Err("config diverged".into());
    }
    Ok(())
}

/// Cold-started serving must be bit-identical to in-memory serving over
/// the same request stream, for a persisted index of either kind.
fn cold_start_matches(
    persisted: PersistedIndex,
    requests: &[Request],
    in_memory: Vec<Response>,
) -> Result<(), String> {
    let cold = ColdStart::from_index(persisted, ServeConfig::default());
    let mut server = cold.server();
    let out = server.run_batch(requests);
    if out.responses.len() != in_memory.len() {
        return Err("response counts diverged".into());
    }
    for (i, (a, b)) in out.responses.iter().zip(&in_memory).enumerate() {
        if !responses_bits_equal(a, b) {
            return Err(format!("response {i} diverged: {a:?} vs {b:?}"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gpa_save_load_is_bit_identical(g in arb_graph(), machines in 2usize..6) {
        if let Err(e) = gpa_roundtrip(&g, machines) {
            prop_assert!(false, "{e}");
        }
    }

    #[test]
    fn hgpa_save_load_is_bit_identical(g in arb_graph(), machines in 2usize..6) {
        if let Err(e) = hgpa_roundtrip(&g, machines) {
            prop_assert!(false, "{e}");
        }
    }

    #[test]
    fn cold_start_gpa_serving_is_bit_identical(
        g in arb_graph(),
        raw in proptest::collection::vec((0u32..1000, 0u32..1000, 0u8..10), 1..40),
    ) {
        let built = GpaIndex::build(&g, &tight(), &GpaBuildOptions::default());
        let requests = requests_from(g.node_count(), &raw);
        let mut mem_server = PprServer::new(&built, ServeConfig::default());
        let in_memory = mem_server.run_batch(&requests).responses;

        let mut buf = Vec::new();
        save_gpa(&built, &mut buf).expect("save");
        let persisted = load_index(buf.as_slice()).expect("load");
        prop_assert_eq!(persisted.kind(), IndexKind::Gpa);
        if let Err(e) = cold_start_matches(persisted, &requests, in_memory) {
            prop_assert!(false, "{e}");
        }
    }

    #[test]
    fn cold_start_hgpa_serving_is_bit_identical(
        g in arb_graph(),
        raw in proptest::collection::vec((0u32..1000, 0u32..1000, 0u8..10), 1..40),
    ) {
        let built = HgpaIndex::build(&g, &tight(), &HgpaBuildOptions::default());
        let requests = requests_from(g.node_count(), &raw);
        let mut mem_server = PprServer::new(&built, ServeConfig::default());
        let in_memory = mem_server.run_batch(&requests).responses;

        let mut buf = Vec::new();
        save_hgpa(&built, &mut buf).expect("save");
        let persisted = load_index(buf.as_slice()).expect("load");
        prop_assert_eq!(persisted.kind(), IndexKind::Hgpa);
        if let Err(e) = cold_start_matches(persisted, &requests, in_memory) {
            prop_assert!(false, "{e}");
        }
    }
}

/// The community-structured generator exercises deeper hierarchies than
/// the uniform random graphs above; pin the full loop once on it, via
/// actual files.
#[test]
fn file_cold_start_on_community_graph() {
    let g = hierarchical_sbm(
        &HsbmConfig {
            nodes: 240,
            ..Default::default()
        },
        7,
    );
    let cfg = PprConfig::default();
    let dir = std::env::temp_dir().join("ppr-roundtrip-test");
    std::fs::create_dir_all(&dir).unwrap();

    let hgpa = HgpaIndex::build(&g, &cfg, &HgpaBuildOptions::default());
    let gpa = GpaIndex::build(&g, &cfg, &GpaBuildOptions::default());
    exact_ppr::core::persist::save_hgpa_file(&hgpa, dir.join("h.pprx")).unwrap();
    exact_ppr::core::persist::save_gpa_file(&gpa, dir.join("g.pprx")).unwrap();

    // Served answers go through the cluster fan-out (per-machine partial
    // sums), so the in-memory reference must be the same server type, not
    // a raw `query()` — summation order is part of the bit pattern.
    let mem_hgpa = ShardedPprServer::new(&hgpa, ServeConfig::default())
        .run_batch(&[Request::Ppv(11)])
        .responses;
    let mem_gpa = ShardedPprServer::new(&gpa, ServeConfig::default())
        .run_batch(&[Request::Ppv(11)])
        .responses;

    for (file, built_ppv, in_memory) in [
        ("h.pprx", hgpa.query(11), mem_hgpa),
        ("g.pprx", gpa.query(11), mem_gpa),
    ] {
        let cold = ColdStart::from_path(dir.join(file), ServeConfig::default()).unwrap();
        assert!(bits_equal(&cold.index().query(11), &built_ppv), "{file}");
        let mut server = cold.sharded_server();
        let out = server.run_batch(&[Request::Ppv(11)]);
        assert!(
            responses_bits_equal(&out.responses[0], &in_memory[0]),
            "{file} served"
        );
    }
}

/// A dynamic (updatable) server cold-starts from an HGPA artifact and
/// continues serving + updating from there.
#[test]
fn dynamic_server_cold_starts_from_hgpa_artifact() {
    use exact_ppr::serve::DynamicPprServer;

    let g = hierarchical_sbm(
        &HsbmConfig {
            nodes: 150,
            ..Default::default()
        },
        13,
    );
    let cfg = PprConfig::default();
    let dir = std::env::temp_dir().join("ppr-roundtrip-dynamic");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("h.pprx");

    let hgpa = HgpaIndex::build(&g, &cfg, &HgpaBuildOptions::default());
    exact_ppr::core::persist::save_hgpa_file(&hgpa, &path).unwrap();

    // In-memory reference through the same (cluster fan-out) server type.
    let mut mem_server = DynamicPprServer::from_index(g.clone(), hgpa, ServeConfig::default());
    let in_memory = mem_server.run_batch(&[Request::Ppv(5)]).responses;

    let mut server =
        DynamicPprServer::from_persisted(&path, g.clone(), ServeConfig::default()).unwrap();
    let out = server.run_batch(&[Request::Ppv(5)]);
    assert!(responses_bits_equal(&out.responses[0], &in_memory[0]));

    // A GPA artifact is the wrong kind for the dynamic server: Err, not panic.
    let gpa = GpaIndex::build(&g, &cfg, &GpaBuildOptions::default());
    let gpa_path = dir.join("g.pprx");
    exact_ppr::core::persist::save_gpa_file(&gpa, &gpa_path).unwrap();
    assert!(DynamicPprServer::from_persisted(&gpa_path, g, ServeConfig::default()).is_err());
}
