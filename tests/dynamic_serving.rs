//! Differential update/query suite: serving must stay *exact while the
//! graph changes*.
//!
//! The one net that catches both updater bugs and cache
//! under-invalidation: random edge-update streams interleaved with
//! queries, where every served answer is compared bit for bit against
//! ground truth on the **current** graph —
//!
//! * the served (batched, cached) answer must equal a fresh cluster
//!   fan-out over the incrementally maintained index (stale cache entries
//!   cannot hide);
//! * the maintained index itself must equal an index whose every vector
//!   is **recomputed from scratch** on the current graph over the same
//!   hierarchy (incomplete dirty tracking cannot hide). Central queries
//!   are the comparison — a promoted hub's machine assignment
//!   legitimately differs between the incremental path and a rebuild,
//!   which permutes the coordinator's floating-point summation order;
//! * and on small graphs, the dense linear-system oracle agrees within
//!   the epsilon contract.
//!
//! Separately, invalidation must be *fine-grained*: an update touching
//! one region must not evict cached sources that provably cannot reach
//! it (hit counts survive updates — not a disguised `clear()`), and the
//! open-loop queueing report must be deterministic and internally
//! consistent.

use exact_ppr::core::hgpa::{HgpaBuildOptions, HgpaIndex};
use exact_ppr::core::PprConfig;
use exact_ppr::graph::dense::dense_ppv;
use exact_ppr::graph::generators::{hierarchical_sbm, HsbmConfig};
use exact_ppr::graph::reach::reverse_reachable;
use exact_ppr::graph::{delta, CsrGraph, EdgeUpdate, GraphBuilder, NodeId};
use exact_ppr::partition::HierarchyConfig;
use exact_ppr::prelude::{Cluster, DynamicPprServer, Request, ServeConfig};
use exact_ppr::serve::{run_open_loop, OpenLoopConfig, ServeEvent};
use exact_ppr::workload::{MixedEvent, MixedStream, MixedStreamConfig};
use proptest::prelude::*;

fn sample(n: usize, seed: u64) -> CsrGraph {
    hierarchical_sbm(
        &HsbmConfig {
            nodes: n,
            depth: 4,
            locality: 0.9,
            ..Default::default()
        },
        seed,
    )
}

fn opts(machines: usize) -> HgpaBuildOptions {
    HgpaBuildOptions {
        machines,
        hierarchy: HierarchyConfig {
            max_leaf_size: 12,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Recompute every stored vector from scratch on `g` over the server's
/// current hierarchy — the differential reference for the incremental
/// updater.
fn scratch_rebuild(server: &DynamicPprServer, cfg: &PprConfig, machines: usize) -> HgpaIndex {
    HgpaIndex::build_with_hierarchy(
        server.graph(),
        cfg,
        &opts(machines),
        server.index().hierarchy().clone(),
    )
}

/// Drive one randomized update/query scenario; every served answer is
/// checked bit for bit, and the final index against a scratch rebuild.
/// Returns (queries checked, update batches applied) for calibration
/// assertions at the call sites.
fn differential_scenario(n: usize, seed: u64, events: usize) -> Result<(usize, usize), String> {
    let machines = 3;
    let cfg = PprConfig::default();
    let g0 = sample(n, seed);
    let mut server = DynamicPprServer::build(
        g0.clone(),
        &cfg,
        &opts(machines),
        ServeConfig {
            max_batch: 4,
            ..Default::default()
        },
    );
    let mut stream = MixedStream::new(
        &g0,
        MixedStreamConfig {
            update_rate: 0.25,
            updates_per_batch: 3,
            zipf_exponent: 1.0,
            ..Default::default()
        },
        seed ^ 0xABCD,
    );
    let mut g_shadow = g0; // maintained independently of the server
    let mut queries = 0usize;
    let mut update_batches = 0usize;
    let cluster = Cluster::with_default_network();

    for event in stream.take(events) {
        match event {
            MixedEvent::Query(u) => {
                queries += 1;
                let served = server.query(u);
                let direct = cluster.query(server.index(), u).result;
                if served != direct {
                    return Err(format!(
                        "seed {seed}: served PPV of {u} diverged from a fresh \
                         fan-out after {update_batches} update batches"
                    ));
                }
            }
            MixedEvent::Update(batch) => {
                update_batches += 1;
                g_shadow = delta::apply_edge_updates(&g_shadow, &batch);
                let out = server
                    .apply_updates(&batch)
                    .map_err(|e| format!("seed {seed}: valid batch rejected: {e}"))?;
                // The stream only emits sequentially effective updates,
                // so nothing is skipped as a no-op — but pairs that
                // reverse within a batch coalesce away before reaching
                // the incremental updater.
                if out.skipped != 0 {
                    return Err(format!(
                        "seed {seed}: stream emitted a no-op update in {batch:?}"
                    ));
                }
                if out.applied + out.coalesced != batch.len() {
                    return Err(format!(
                        "seed {seed}: applied {} + coalesced {} != batch {} in {batch:?}",
                        out.applied,
                        out.coalesced,
                        batch.len()
                    ));
                }
            }
            MixedEvent::Churn(_) => unreachable!("churn disabled in this config"),
        }
    }

    // The server's graph must track the independently maintained shadow.
    if !server.graph().edges().eq(g_shadow.edges()) {
        return Err(format!("seed {seed}: server graph diverged from shadow"));
    }

    // Updater differential: bit-identical to a from-scratch recomputation
    // of every vector on the current graph.
    let rebuilt = scratch_rebuild(&server, &cfg, machines);
    for u in (0..n as NodeId).step_by(7) {
        if server.index().query(u) != rebuilt.query(u) {
            return Err(format!(
                "seed {seed}: maintained index diverged from scratch rebuild at source {u}"
            ));
        }
    }
    Ok((queries, update_batches))
}

proptest! {
    // Default-config cases so the CI deep-test job can scale this suite
    // via `PROPTEST_CASES`.
    #![proptest_config(ProptestConfig::default())]

    #[test]
    fn served_answers_survive_random_update_streams(seed in 0u64..10_000) {
        let (queries, updates) = differential_scenario(72, seed, 24).map_err(|e| e.to_string())?;
        prop_assert!(queries + updates == 24);
    }
}

#[test]
fn differential_scenario_exercises_both_sides() {
    // One deterministic, bigger run — and proof the scenario actually
    // mixes reads and writes rather than vacuously passing.
    let (queries, updates) = differential_scenario(120, 42, 60).unwrap();
    assert!(queries >= 30, "only {queries} queries");
    assert!(updates >= 5, "only {updates} update batches");
}

#[test]
fn maintained_server_matches_dense_oracle() {
    // End-to-end exactness on the *final* graph after a long update
    // stream: the served answers solve the PPR linear system of the
    // current graph within the epsilon contract.
    let n = 90;
    let cfg = PprConfig {
        epsilon: 1e-9,
        ..Default::default()
    };
    let g0 = sample(n, 9);
    let mut server =
        DynamicPprServer::build(g0.clone(), &cfg, &opts(3), ServeConfig::default());
    let mut stream = MixedStream::new(
        &g0,
        MixedStreamConfig {
            update_rate: 1.0, // updates only
            updates_per_batch: 2,
            ..Default::default()
        },
        77,
    );
    for event in stream.take(8) {
        if let MixedEvent::Update(batch) = event {
            server.apply_updates(&batch).expect("valid update batch");
        }
    }
    for u in [0u32, 30, 60, 89] {
        let oracle = dense_ppv(server.graph(), u, 0.15);
        let served = server.query(u);
        for v in 0..n as NodeId {
            assert!(
                (served.get(v) - oracle[v as usize]).abs() < 1e-5,
                "u {u} v {v}: {} vs {}",
                served.get(v),
                oracle[v as usize]
            );
        }
    }
}

/// Two disconnected 3-communities: updates inside one half provably
/// cannot affect sources in the other.
fn disjoint_halves(half: usize) -> CsrGraph {
    let n = 2 * half;
    let mut b = GraphBuilder::new(n);
    for base in [0, half] {
        for i in 0..half {
            let at = |k: usize| (base + (i + k) % half) as NodeId;
            b.push_edge(at(0), at(1)); // ring
            b.push_edge(at(0), at(3)); // chord
            b.push_edge(at(1), at(0)); // reciprocity
        }
    }
    b.build()
}

#[test]
fn cache_retention_is_fine_grained_not_a_clear() {
    let g = disjoint_halves(40);
    let n = g.node_count();
    let cfg = PprConfig::default();
    let mut server = DynamicPprServer::build(g, &cfg, &opts(3), ServeConfig::default());

    // Warm the cache with sources from both halves.
    let sources: Vec<NodeId> = vec![0, 5, 11, 41, 47, 63];
    for &u in &sources {
        server.query(u);
    }
    assert_eq!(server.cache_len(), sources.len());
    let hits_before = server.cache_stats().hits;

    // Update touching only the second half: insert an edge between two
    // members of one leaf subgraph there (fall back to any in-half pair).
    let (a, b) = {
        let h = server.index().hierarchy();
        h.leaves()
            .map(|l| &h.nodes[l].members)
            .filter(|m| m.len() >= 2 && m.iter().all(|&v| v as usize >= n / 2))
            .flat_map(|m| {
                m.iter()
                    .flat_map(|&x| m.iter().map(move |&y| (x, y)))
                    .filter(|&(x, y)| x != y && !server.graph().has_edge(x, y))
            })
            .next()
            .expect("an insertable in-leaf pair in the second half")
    };
    let outcome = server
        .apply_updates(&[EdgeUpdate::Insert(a, b)])
        .expect("valid insert");
    assert_eq!(outcome.applied, 1);

    // Fine-grained: first-half sources survive; the invalidation was not
    // a disguised clear().
    assert_eq!(outcome.retained, 3, "first-half entries must survive");
    assert!(outcome.evicted <= 3, "at most the second-half entries go");
    assert!(server.cache_len() >= 3);

    // Survivors are *hits* — and still bit-identical to fresh fan-outs
    // on the updated index.
    let cluster = Cluster::with_default_network();
    for &u in &sources[..3] {
        assert_eq!(server.query(u), cluster.query(server.index(), u).result);
    }
    let hits_after = server.cache_stats().hits;
    assert!(
        hits_after >= hits_before + 3,
        "cached PPVs must keep hitting across the update ({hits_before} -> {hits_after})"
    );
    // Second-half sources answer exactly too (fresh where evicted).
    for &u in &sources[3..] {
        assert_eq!(server.query(u), cluster.query(server.index(), u).result);
    }
    // Cumulative cache history survived the invalidation.
    assert_eq!(server.cache_stats().invalidated, outcome.evicted as u64);
}

#[test]
fn eviction_predicate_matches_reachability() {
    // The set the server evicts is exactly the reverse-reachable set of
    // the update's touched nodes, restricted to resident keys.
    let g = disjoint_halves(30);
    let cfg = PprConfig::default();
    let mut server = DynamicPprServer::build(g, &cfg, &opts(2), ServeConfig::default());
    for u in 0..60u32 {
        server.query(u);
    }
    assert_eq!(server.cache_len(), 60);
    let out = server
        .apply_updates(&[EdgeUpdate::Insert(2, 17)])
        .expect("valid insert");
    let stale = reverse_reachable(server.graph(), &out.stats.dirty_nodes);
    let expected_evicted = stale.iter().filter(|&&s| s).count();
    assert_eq!(out.evicted, expected_evicted);
    assert_eq!(out.retained, 60 - expected_evicted);
    // Specifically: the untouched half is fully retained.
    assert!((30..60).all(|v| !stale[v]));
}

#[test]
fn open_loop_report_is_deterministic_and_consistent() {
    let make = || {
        let g0 = sample(100, 13);
        let server = DynamicPprServer::build(
            g0.clone(),
            &PprConfig::default(),
            &opts(3),
            ServeConfig {
                max_batch: 4,
                ..Default::default()
            },
        );
        let events: Vec<ServeEvent> = MixedStream::new(
            &g0,
            MixedStreamConfig {
                update_rate: 0.15,
                ..Default::default()
            },
            5,
        )
        .take(60)
        .into_iter()
        .map(|e| match e {
            MixedEvent::Query(u) => ServeEvent::Query(Request::Ppv(u)),
            MixedEvent::Update(batch) => ServeEvent::Update(batch),
            MixedEvent::Churn(delta) => ServeEvent::Churn(delta),
        })
        .collect();
        (server, events)
    };
    let cfg = OpenLoopConfig {
        arrival_rate: 900.0, // past saturation: queueing must show up
        seed: 31,
        ..Default::default()
    };

    let (mut s1, ev1) = make();
    let r1 = run_open_loop(&mut s1, &ev1, &cfg);
    let (mut s2, ev2) = make();
    let r2 = run_open_loop(&mut s2, &ev2, &cfg);
    // Deterministic: the whole report replays bit for bit.
    assert_eq!(r1, r2);

    // Internally consistent: counts add up, percentiles are ordered, and
    // sojourn dominates service (sojourn = wait + service, wait ≥ 0).
    assert_eq!(
        r1.queries + r1.update_batches + r1.rejected_batches,
        ev1.len()
    );
    assert!(r1.update_batches > 0);
    assert_eq!(r1.rejected_batches, 0, "this stream is churn-free");
    assert!(r1.p99_sojourn_ms >= r1.p50_sojourn_ms);
    assert!(r1.p99_service_ms >= r1.p50_service_ms);
    assert!(r1.p50_sojourn_ms >= r1.p50_service_ms);
    assert!(r1.p99_sojourn_ms >= r1.p99_service_ms);
    assert!(r1.max_sojourn_ms >= r1.p99_sojourn_ms);
    assert!(r1.mean_wait_ms >= 0.0);
    assert!(r1.makespan_seconds > 0.0);
    assert!(r1.max_queue_depth >= 2, "overload must queue events");
}
