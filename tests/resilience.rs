//! Resilience acceptance suite: overload and failure must never produce
//! a silent drop or an unlabelled wrong answer.
//!
//! The contract, pinned here end to end:
//!
//! * **Empty plan ⇒ bit-identical.** With no faults injected,
//!   [`DynamicPprServer::run_batch_resilient`] is byte-for-byte the
//!   pre-resilience exact path — same responses, same cache residency —
//!   proptest-pinned over random graphs and mixed request shapes.
//! * **Degraded ⇒ bounded.** Under an outage every answer is
//!   [`Answer::Approximate`] whose per-coordinate Hoeffding bound holds
//!   against the exact PPV, proptest-pinned.
//! * **Recovery ⇒ exact again.** Backfill drains the parked backlog and
//!   subsequent answers are bit-identical to a never-faulted twin.
//! * **No silent drops.** In the open loop every driven event resolves:
//!   `queries + shed + update_batches + rejected_batches == events`, and
//!   the whole report replays bit-identically.
//! * **Admission control is explicit.** [`ShardedPprServer::serve_bounded`]
//!   answers the admitted prefix exactly and marks the rest
//!   [`Answer::Shed`] — never truncating the reply vector.

use exact_ppr::cluster::{Cluster, FaultPlan};
use exact_ppr::core::hgpa::{HgpaBuildOptions, HgpaIndex};
use exact_ppr::core::PprConfig;
use exact_ppr::graph::generators::{hierarchical_sbm, HsbmConfig};
use exact_ppr::graph::{CsrGraph, NodeId};
use exact_ppr::partition::HierarchyConfig;
use exact_ppr::serve::{
    run_open_loop, Answer, ArrivalPattern, DynamicPprServer, OpenLoopConfig, Request, Response,
    ServeConfig, ServeEvent, ServiceModel, ShardedPprServer,
};
use exact_ppr::workload::{MixedEvent, MixedStream, MixedStreamConfig};
use proptest::prelude::*;

fn sample(n: usize, seed: u64) -> CsrGraph {
    hierarchical_sbm(
        &HsbmConfig {
            nodes: n,
            depth: 3,
            locality: 0.9,
            ..Default::default()
        },
        seed,
    )
}

fn opts(machines: usize) -> HgpaBuildOptions {
    HgpaBuildOptions {
        machines,
        hierarchy: HierarchyConfig {
            max_leaf_size: 12,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn make_server(n: usize, seed: u64) -> DynamicPprServer {
    DynamicPprServer::build(
        sample(n, seed),
        &PprConfig::default(),
        &opts(3),
        ServeConfig {
            max_batch: 4,
            ..Default::default()
        },
    )
}

/// A deterministic mixed-shape request list derived from `seed`.
fn request_mix(n: usize, seed: u64, count: usize) -> Vec<Request> {
    (0..count)
        .map(|i| {
            let u = ((seed as usize).wrapping_mul(7) + i * 13) % n;
            let u = u as NodeId;
            match i % 3 {
                0 => Request::Ppv(u),
                1 => Request::TopK { source: u, k: 8 },
                _ => Request::Preference(vec![(u, 0.7), (((u as usize + 1) % n) as NodeId, 0.3)]),
            }
        })
        .collect()
}

proptest! {
    // Default-config cases so the CI deep-test job can scale this suite
    // via PROPTEST_CASES.
    #![proptest_config(ProptestConfig::default())]

    #[test]
    fn empty_plan_is_bit_identical_to_the_exact_path(seed in 0u64..10_000) {
        let n = 60;
        let mut exact_server = make_server(n, seed);
        let mut resilient = make_server(n, seed);
        resilient.set_fault_plan(FaultPlan::empty());
        let requests = request_mix(n, seed, 12);
        for chunk in requests.chunks(4) {
            let expected = exact_server.run_batch(chunk).responses;
            let out = resilient.run_batch_resilient(chunk);
            prop_assert!(out.round_complete);
            prop_assert_eq!(out.answers.len(), expected.len());
            for (answer, resp) in out.answers.iter().zip(&expected) {
                prop_assert_eq!(answer, &Answer::Exact(resp.clone()));
            }
        }
        // Cache residency (and therefore every future answer) agrees too.
        prop_assert_eq!(exact_server.cache_len(), resilient.cache_len());
        let probe = ((seed as usize) * 11 % n) as NodeId;
        prop_assert_eq!(exact_server.query(probe), resilient.query(probe));
        prop_assert_eq!(resilient.resilience_stats().degraded_answers, 0);
        prop_assert_eq!(resilient.backlog_len(), 0);
    }

    #[test]
    fn degraded_bounds_hold_and_recovery_is_exact(seed in 0u64..10_000) {
        let n = 48;
        let mut server = make_server(n, seed);
        // Total outage of machine 0: every fan-out round is incomplete.
        server.set_fault_plan(FaultPlan::empty().fail(0, 0, u64::MAX));
        let u = ((seed as usize) % n) as NodeId;
        let out = server.run_batch_resilient(&[Request::Ppv(u)]);
        prop_assert!(!out.round_complete);
        let answer = &out.answers[0];
        prop_assert!(answer.is_approximate());
        let bound = answer.precision_bound().expect("approximate carries a bound");
        prop_assert_eq!(bound, server.degraded_bound());

        // The Hoeffding bound holds coordinate-wise against the exact PPV.
        let exact = Cluster::with_default_network().query(server.index(), u).result;
        let approx = match answer.response() {
            Some(Response::Ppv(v)) => v,
            other => panic!("Ppv request must yield a Ppv response, got {other:?}"),
        };
        for v in 0..n as NodeId {
            let err = (approx.get(v) - exact.get(v)).abs();
            prop_assert!(err <= bound + 1e-12, "v {}: err {} > bound {}", v, err, bound);
        }
        // The missing source was parked, not forgotten.
        prop_assert_eq!(server.backlog_len(), 1);

        // Recovery: the plan clears, backfill recomputes the parked
        // source exactly, and serving is bit-identical to the exact path.
        server.set_fault_plan(FaultPlan::empty());
        let bf = server.backfill(usize::MAX);
        prop_assert!(bf.round_complete);
        prop_assert_eq!(bf.recovered, 1);
        prop_assert_eq!(server.backlog_len(), 0);
        let after = server.run_batch_resilient(&[Request::Ppv(u)]);
        prop_assert_eq!(&after.answers[0], &Answer::Exact(Response::Ppv(exact)));
    }
}

#[test]
fn open_loop_resolves_every_event_under_overload_and_faults() {
    let make = || {
        let g0 = sample(90, 23);
        let mut server = DynamicPprServer::build(
            g0.clone(),
            &PprConfig::default(),
            &opts(3),
            ServeConfig {
                max_batch: 4,
                ..Default::default()
            },
        );
        // A straggler plus a crash window: rounds go slow AND incomplete.
        server.set_fault_plan(FaultPlan::empty().slow(1, 8.0).fail(2, 1, 6));
        let events: Vec<ServeEvent> = MixedStream::new(
            &g0,
            MixedStreamConfig {
                update_rate: 0.1,
                ..Default::default()
            },
            7,
        )
        .take(64)
        .into_iter()
        .map(|e| match e {
            MixedEvent::Query(u) => ServeEvent::Query(Request::Ppv(u)),
            MixedEvent::Update(batch) => ServeEvent::Update(batch),
            MixedEvent::Churn(delta) => ServeEvent::Churn(delta),
        })
        .collect();
        (server, events)
    };
    let cfg = OpenLoopConfig {
        arrival_rate: 1_200.0, // past saturation: shedding must engage
        seed: 3,
        service: ServiceModel::modeled_default(),
        pattern: ArrivalPattern::Bursty {
            period_events: 16,
            on_events: 8,
            peak: 6.0,
        },
        queue_cap: Some(6),
        slo_ms: Some(2.0),
        ..Default::default()
    };
    let (mut s1, ev1) = make();
    let r1 = run_open_loop(&mut s1, &ev1, &cfg);

    // No silent drops: every driven event resolved exactly one way.
    assert_eq!(
        r1.queries + r1.shed + r1.update_batches + r1.rejected_batches,
        ev1.len()
    );
    assert!(r1.shed > 0, "cap 6 under 6x bursts must shed");
    assert!(r1.degraded_answers > 0, "SLO 2ms under faults must degrade");
    assert!(r1.degraded_answers <= r1.queries);
    assert_eq!(r1.p99_shed_ms, 0.0, "fail-fast admission rejects at arrival");
    assert!(r1.max_queue_depth <= 6 + 1, "cap bounds the queue (plus one write)");
    // Per-class percentiles stay ordered within the overall spread.
    assert!(r1.p99_exact_ms <= r1.max_sojourn_ms + 1e-9);
    assert!(r1.p99_approx_ms <= r1.max_sojourn_ms + 1e-9);

    // The whole faulted, shedding, degrading run replays bit-identically.
    let (mut s2, ev2) = make();
    assert_eq!(r1, run_open_loop(&mut s2, &ev2, &cfg));
    assert_eq!(
        s1.resilience_stats().degraded_answers,
        s2.resilience_stats().degraded_answers
    );
}

#[test]
fn serve_bounded_sheds_the_tail_explicitly() {
    let g = sample(80, 11);
    let idx = HgpaIndex::build(&g, &PprConfig::default(), &opts(3));
    let requests = request_mix(80, 11, 10);

    let mut reference = ShardedPprServer::new(&idx, ServeConfig::default());
    let expected = reference.serve(&requests[..4]);

    let mut server = ShardedPprServer::new(&idx, ServeConfig::default());
    let answers = server.serve_bounded(&requests, 4);
    assert_eq!(answers.len(), requests.len(), "one answer per request");
    for (answer, resp) in answers[..4].iter().zip(&expected) {
        assert_eq!(answer, &Answer::Exact(resp.clone()), "admitted prefix is exact");
    }
    assert!(answers[4..].iter().all(Answer::is_shed), "the tail is shed, not dropped");

    // A cap beyond the batch sheds nothing.
    let mut server = ShardedPprServer::new(&idx, ServeConfig::default());
    let all = server.serve_bounded(&requests[..4], 100);
    assert!(all.iter().all(Answer::is_exact));
}
