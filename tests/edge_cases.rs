//! Degenerate and adversarial inputs: the indexes must stay correct (or
//! fail loudly) on graphs real deployments encounter — tiny, empty-ish,
//! star-shaped, self-loop-preprocessed, single-community.

use exact_ppr::core::gpa::{GpaBuildOptions, GpaIndex};
use exact_ppr::core::hgpa::{HgpaBuildOptions, HgpaIndex};
use exact_ppr::core::power::{power_iteration, power_iteration_full, DanglingPolicy};
use exact_ppr::core::PprConfig;
use exact_ppr::graph::analytics::add_dangling_self_loops;
use exact_ppr::graph::csr::from_edges;
use exact_ppr::graph::dense::dense_ppv;
use exact_ppr::graph::GraphBuilder;

fn tight() -> PprConfig {
    PprConfig {
        epsilon: 1e-9,
        ..Default::default()
    }
}

#[test]
fn single_node_graph() {
    let g = from_edges(1, &[]);
    let idx = HgpaIndex::build(&g, &tight(), &HgpaBuildOptions::default());
    let ppv = idx.query(0);
    assert!((ppv.get(0) - 0.15).abs() < 1e-9);
    assert_eq!(ppv.nnz(), 1);
}

#[test]
fn two_node_graph() {
    let g = from_edges(2, &[(0, 1), (1, 0)]);
    let idx = HgpaIndex::build(&g, &tight(), &HgpaBuildOptions::default());
    let oracle = dense_ppv(&g, 0, 0.15);
    let got = idx.query(0);
    assert!((got.get(0) - oracle[0]).abs() < 1e-8);
    assert!((got.get(1) - oracle[1]).abs() < 1e-8);
}

#[test]
fn edgeless_graph() {
    let g = from_edges(5, &[]);
    let idx = HgpaIndex::build(&g, &tight(), &HgpaBuildOptions::default());
    for u in 0..5 {
        let ppv = idx.query(u);
        assert!((ppv.get(u) - 0.15).abs() < 1e-9);
        assert_eq!(ppv.nnz(), 1);
    }
}

#[test]
fn star_graph_center_and_leaf_queries() {
    // Hub-and-spoke: worst case for partitioners (no good separator other
    // than the centre itself).
    let mut b = GraphBuilder::new(40);
    for i in 1..40u32 {
        b.push_edge(0, i);
        b.push_edge(i, 0);
    }
    let g = b.build();
    let idx = HgpaIndex::build(&g, &tight(), &HgpaBuildOptions::default());
    for u in [0u32, 1, 39] {
        let oracle = dense_ppv(&g, u, 0.15);
        let got = idx.query(u);
        for v in 0..40u32 {
            assert!(
                (got.get(v) - oracle[v as usize]).abs() < 1e-6,
                "u {u} v {v}"
            );
        }
    }
}

#[test]
fn self_loop_preprocessed_graph_is_exact_and_stochastic() {
    let g = from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (1, 5)]);
    assert!(!g.dangling_nodes().is_empty());
    let fixed = add_dangling_self_loops(&g);
    let idx = HgpaIndex::build(&fixed, &tight(), &HgpaBuildOptions::default());
    let ppv = idx.query(0);
    // Stochastic: all mass retained.
    assert!((ppv.l1_norm() - 1.0).abs() < 1e-6);
    let oracle = dense_ppv(&fixed, 0, 0.15);
    for v in 0..6u32 {
        assert!((ppv.get(v) - oracle[v as usize]).abs() < 1e-6);
    }
}

#[test]
fn more_machines_than_meaningful_work() {
    let g = from_edges(8, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 0)]);
    let idx = HgpaIndex::build(
        &g,
        &tight(),
        &HgpaBuildOptions {
            machines: 32, // far more machines than hubs/leaves
            ..Default::default()
        },
    );
    let oracle = dense_ppv(&g, 3, 0.15);
    // Machine vectors still sum to the exact answer; idle machines reply
    // with (nearly) empty vectors.
    let mut dense = [0.0f64; 8];
    for m in 0..32 {
        for (v, x) in idx.machine_vector(3, m).iter() {
            dense[v as usize] += x;
        }
    }
    for v in 0..8 {
        assert!((dense[v] - oracle[v]).abs() < 1e-7, "v {v}");
    }
}

#[test]
fn gpa_with_more_parts_than_nodes() {
    let g = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
    let idx = GpaIndex::build(
        &g,
        &tight(),
        &GpaBuildOptions {
            subgraphs: 16,
            machines: 3,
            ..Default::default()
        },
    );
    let oracle = dense_ppv(&g, 2, 0.15);
    let got = idx.query(2);
    for v in 0..5u32 {
        assert!((got.get(v) - oracle[v as usize]).abs() < 1e-7);
    }
}

#[test]
fn restart_policy_differs_from_absorb_only_with_dangling() {
    let no_dangling = from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
    let a = power_iteration(&no_dangling, 0, &tight());
    let b = power_iteration_full(&no_dangling, 0, &tight(), DanglingPolicy::RestartToSource).ppv;
    for v in 0..3 {
        assert!((a[v] - b[v]).abs() < 1e-10, "policies must agree without dangling");
    }

    let with_dangling = from_edges(3, &[(0, 1), (1, 2)]);
    let a = power_iteration(&with_dangling, 0, &tight());
    let b =
        power_iteration_full(&with_dangling, 0, &tight(), DanglingPolicy::RestartToSource).ppv;
    assert!((a[0] - b[0]).abs() > 1e-6, "policies must differ with dangling");
}

#[test]
fn persisted_index_survives_for_degenerate_graphs() {
    let g = from_edges(2, &[(0, 1)]);
    let idx = HgpaIndex::build(&g, &tight(), &HgpaBuildOptions::default());
    let mut buf = Vec::new();
    exact_ppr::core::persist::save_hgpa(&idx, &mut buf).unwrap();
    let loaded = exact_ppr::core::persist::load_hgpa(buf.as_slice()).unwrap();
    assert_eq!(idx.query(0), loaded.query(0));
    assert_eq!(idx.query(1), loaded.query(1));
}
