//! Concurrency exactness: the threaded cluster fan-out, the sharded
//! server, and the epoch-barrier dynamic server must be **bit-identical**
//! to their sequential counterparts on any workload —
//!
//! * a threaded fan-out round equals the sequential round entry for
//!   entry (same replies, same coordinator sum);
//! * `ShardedPprServer` answers any mixed request stream exactly like
//!   the single-shard `PprServer`, at every shard count;
//! * a sharded+threaded `DynamicPprServer` tracks a fully sequential one
//!   through interleaved read/write streams (proptest-driven);
//! * shard-partitioned caches retain provably unaffected entries across
//!   updates — sharding must not degrade fine-grained invalidation to a
//!   clear().

use exact_ppr::core::hgpa::{HgpaBuildOptions, HgpaIndex};
use exact_ppr::core::PprConfig;
use exact_ppr::graph::generators::{hierarchical_sbm, HsbmConfig};
use exact_ppr::graph::{CsrGraph, GraphBuilder, NodeId};
use exact_ppr::partition::HierarchyConfig;
use exact_ppr::prelude::{
    Cluster, ClusterConfig, DynamicPprServer, EdgeUpdate, GpaBuildOptions, GpaIndex,
    ParallelismMode, PprServer, Request, ServeConfig, ShardedPprServer,
};
use exact_ppr::workload::{MixedEvent, MixedStream, MixedStreamConfig};
use proptest::prelude::*;

fn sample(n: usize, seed: u64) -> CsrGraph {
    hierarchical_sbm(
        &HsbmConfig {
            nodes: n,
            depth: 4,
            locality: 0.9,
            ..Default::default()
        },
        seed,
    )
}

fn opts(machines: usize) -> HgpaBuildOptions {
    HgpaBuildOptions {
        machines,
        hierarchy: HierarchyConfig {
            max_leaf_size: 16,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn sequential_config() -> ServeConfig {
    ServeConfig {
        max_batch: 8,
        shards: 1,
        parallelism: ParallelismMode::Sequential,
        ..Default::default()
    }
}

fn sharded_config(shards: usize) -> ServeConfig {
    ServeConfig {
        max_batch: 8,
        shards,
        parallelism: ParallelismMode::Threads(shards.max(2)),
        ..Default::default()
    }
}

/// A deterministic mixed-shape request stream over `n` nodes.
fn request_stream(n: usize, count: usize, seed: u64) -> Vec<Request> {
    let node = |i: u64| (seed.wrapping_mul(0x9E37).wrapping_add(i * 31) % n as u64) as NodeId;
    (0..count as u64)
        .map(|i| match i % 5 {
            0 | 3 => Request::Ppv(node(i)),
            1 => Request::TopK {
                source: node(i),
                k: 1 + (i as usize % 12),
            },
            2 => Request::Preference(vec![(node(i), 0.7), (node(i + 13), 0.3)]),
            _ => Request::Ppv(node(i / 2)), // repeats: cache hits
        })
        .collect()
}

#[test]
fn threaded_cluster_rounds_equal_sequential_rounds() {
    let g = sample(230, 5);
    let cfg = PprConfig::default();
    let hgpa = HgpaIndex::build(&g, &cfg, &opts(4));
    let gpa = GpaIndex::build(
        &g,
        &cfg,
        &GpaBuildOptions {
            machines: 5,
            ..Default::default()
        },
    );
    let sequential = Cluster::with_default_network();
    for workers in [2usize, 4, 7] {
        let threaded = Cluster::new(ClusterConfig {
            parallelism: ParallelismMode::Threads(workers),
            ..ClusterConfig::default()
        });
        let sources: Vec<NodeId> = (0..40).map(|i| (i * 11) % 230).collect();
        let a = sequential.query_many(&hgpa, &sources);
        let b = threaded.query_many(&hgpa, &sources);
        assert_eq!(a.results, b.results, "hgpa workers {workers}");
        let a = sequential.query_many(&gpa, &sources);
        let b = threaded.query_many(&gpa, &sources);
        assert_eq!(a.results, b.results, "gpa workers {workers}");
        let pref = [(9u32, 0.4), (100u32, 0.35), (201u32, 0.25)];
        assert_eq!(
            sequential.query_preference(&hgpa, &pref).result,
            threaded.query_preference(&hgpa, &pref).result,
            "workers {workers}"
        );
    }
}

#[test]
fn sharded_server_is_bit_identical_to_sequential_server() {
    let g = sample(260, 9);
    let idx = HgpaIndex::build(&g, &PprConfig::default(), &opts(4));
    let requests = request_stream(260, 120, 0xC0FFEE);
    for shards in [2usize, 3, 4, 8] {
        let mut reference = PprServer::new(&idx, sequential_config());
        let mut sharded = ShardedPprServer::new(&idx, sharded_config(shards));
        assert_eq!(sharded.shard_count(), shards);
        let want = reference.serve(&requests);
        let got = sharded.serve(&requests);
        assert_eq!(want, got, "shards {shards}");
        // Same distinct sources were resolved; residency may differ
        // (shards split the byte budget) but lookups must all be served.
        assert_eq!(
            reference.stats().requests,
            sharded.stats().requests,
            "shards {shards}"
        );
        // The shard fleet actually spreads keys: with enough distinct
        // sources, no single shard holds everything.
        if shards > 1 {
            let per_shard = sharded.shard_stats();
            assert_eq!(per_shard.len(), shards);
            let resident = sharded.cache_len();
            assert!(resident > 0);
            let busiest = per_shard
                .iter()
                .map(|s| s.insertions)
                .max()
                .unwrap_or_default();
            let total: u64 = per_shard.iter().map(|s| s.insertions).sum();
            assert!(
                busiest < total,
                "shards {shards}: all {total} insertions landed on one shard"
            );
        }
    }
}

#[test]
fn sharded_server_with_cache_disabled_still_matches() {
    let g = sample(180, 21);
    let idx = HgpaIndex::build(&g, &PprConfig::default(), &opts(3));
    let requests = request_stream(180, 60, 7);
    let mut reference = PprServer::new(
        &idx,
        ServeConfig {
            cache_capacity_bytes: 0,
            ..sequential_config()
        },
    );
    let mut sharded = ShardedPprServer::new(
        &idx,
        ServeConfig {
            cache_capacity_bytes: 0,
            ..sharded_config(4)
        },
    );
    assert_eq!(reference.serve(&requests), sharded.serve(&requests));
    assert_eq!(sharded.cache_len(), 0);
}

/// Drive the same mixed read/write stream through a fully sequential
/// dynamic server and a sharded+threaded one; every response and the
/// final graphs must agree bit for bit.
fn dynamic_differential(n: usize, seed: u64, events: usize, shards: usize) -> Result<(), String> {
    let cfg = PprConfig::default();
    let g0 = sample(n, seed);
    let mut sequential =
        DynamicPprServer::build(g0.clone(), &cfg, &opts(3), sequential_config());
    let mut sharded = DynamicPprServer::build(g0.clone(), &cfg, &opts(3), sharded_config(shards));
    assert_eq!(sharded.shard_count(), shards);

    let mut stream = MixedStream::new(
        &g0,
        MixedStreamConfig {
            update_rate: 0.3,
            updates_per_batch: 3,
            zipf_exponent: 1.0,
            ..Default::default()
        },
        seed ^ 0x5EED,
    );
    let mut updates_seen = 0usize;
    for (i, event) in stream.take(events).into_iter().enumerate() {
        match event {
            MixedEvent::Query(u) => {
                // Mixed request shapes so every assembly path crosses the
                // worker threads.
                let reqs = [
                    Request::Ppv(u),
                    Request::TopK {
                        source: u,
                        k: 1 + i % 9,
                    },
                    Request::Preference(vec![(u, 0.6), ((u as usize % n) as NodeId, 0.4)]),
                ];
                let a = sequential.run_batch(&reqs).responses;
                let b = sharded.run_batch(&reqs).responses;
                if a != b {
                    return Err(format!(
                        "seed {seed} shards {shards}: responses diverged at event {i} (source {u})"
                    ));
                }
            }
            MixedEvent::Update(batch) => {
                updates_seen += 1;
                let a = sequential
                    .apply_updates(&batch)
                    .map_err(|e| format!("seed {seed}: sequential rejected: {e}"))?;
                let b = sharded
                    .apply_updates(&batch)
                    .map_err(|e| format!("seed {seed}: sharded rejected: {e}"))?;
                if (a.applied, a.skipped, a.coalesced, a.epoch)
                    != (b.applied, b.skipped, b.coalesced, b.epoch)
                {
                    return Err(format!(
                        "seed {seed} shards {shards}: update accounting diverged at event {i}"
                    ));
                }
            }
            MixedEvent::Churn(_) => unreachable!("churn disabled in this config"),
        }
    }
    if !sequential.graph().edges().eq(sharded.graph().edges()) {
        return Err(format!("seed {seed} shards {shards}: final graphs diverged"));
    }
    if sequential.epoch() != sharded.epoch() {
        return Err(format!("seed {seed} shards {shards}: epochs diverged"));
    }
    // Post-stream sweep: both serve the same answers on the final graph.
    for u in (0..n as NodeId).step_by(11) {
        if sequential.query(u) != sharded.query(u) {
            return Err(format!(
                "seed {seed} shards {shards}: final PPV of {u} diverged"
            ));
        }
    }
    let _ = updates_seen;
    Ok(())
}

proptest! {
    // Default-config cases so the CI deep-test job can scale this suite
    // via `PROPTEST_CASES`.
    #![proptest_config(ProptestConfig::default())]

    #[test]
    fn sharded_dynamic_server_tracks_sequential_on_mixed_streams(seed in 0u64..10_000) {
        let shards = 2 + (seed % 3) as usize; // 2..=4
        dynamic_differential(64, seed, 16, shards).map_err(|e| e.to_string())?;
    }
}

#[test]
fn sharded_dynamic_differential_bigger_run() {
    dynamic_differential(110, 77, 40, 4).unwrap();
}

/// Two disconnected halves: updates inside one cannot affect the other.
fn disjoint_halves(half: usize) -> CsrGraph {
    let n = 2 * half;
    let mut b = GraphBuilder::new(n);
    for base in [0, half] {
        for i in 0..half {
            let at = |k: usize| (base + (i + k) % half) as NodeId;
            b.push_edge(at(0), at(1));
            b.push_edge(at(0), at(3));
            b.push_edge(at(1), at(0));
        }
    }
    b.build()
}

#[test]
fn shard_caches_retain_unaffected_entries_across_updates() {
    let g = disjoint_halves(40);
    let cfg = PprConfig::default();
    let mut server = DynamicPprServer::build(g, &cfg, &opts(3), sharded_config(4));

    // Warm all shards with sources from both halves.
    let first_half: Vec<NodeId> = vec![0, 5, 11, 17, 23, 29];
    let second_half: Vec<NodeId> = vec![41, 47, 63, 71];
    for &u in first_half.iter().chain(&second_half) {
        server.query(u);
    }
    assert_eq!(server.cache_len(), first_half.len() + second_half.len());
    let hits_before = server.cache_stats().hits;

    // An update confined to the second half: every first-half entry is
    // provably unaffected and must survive in whichever shard holds it.
    let (a, b) = (41u32, 55u32);
    assert!(!server.graph().has_edge(a, b));
    let outcome = server
        .apply_updates(&[EdgeUpdate::Insert(a, b)])
        .expect("valid insert");
    assert_eq!(outcome.applied, 1);
    assert_eq!(outcome.epoch, 1);
    assert_eq!(
        outcome.retained,
        first_half.len(),
        "first-half entries must survive the per-shard sweep"
    );
    assert!(outcome.evicted <= second_half.len());

    // Survivors keep *hitting* — the epoch barrier ran a fine-grained
    // sweep, not a clear() — and stay bit-identical to fresh fan-outs.
    let cluster = Cluster::with_default_network();
    for &u in &first_half {
        assert_eq!(server.query(u), cluster.query(server.index(), u).result);
    }
    assert!(
        server.cache_stats().hits >= hits_before + first_half.len() as u64,
        "sharded caches must keep hitting across the update"
    );
    for &u in &second_half {
        assert_eq!(server.query(u), cluster.query(server.index(), u).result);
    }
    assert_eq!(server.cache_stats().invalidated, outcome.evicted as u64);
}
