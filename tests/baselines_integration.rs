//! Baseline-engine integration: the BSP engines, FastPPV, and Monte Carlo
//! all converge to (or toward) the same PPVs as the exact methods, and
//! their cost profiles order the way the paper's figures show.

use exact_ppr::baselines::{BlogelPpr, FastPpv, MonteCarloPpr, PregelPpr};
use exact_ppr::cluster::Cluster;
use exact_ppr::core::hgpa::{HgpaBuildOptions, HgpaIndex};
use exact_ppr::core::power::power_iteration;
use exact_ppr::core::PprConfig;
use exact_ppr::metrics::{l_inf, precision_at_k};
use exact_ppr::workload::{query_nodes, Dataset};

fn cfg() -> PprConfig {
    PprConfig {
        epsilon: 1e-8,
        ..Default::default()
    }
}

#[test]
fn all_engines_compute_the_same_vector() {
    let g = Dataset::Web.generate_with_nodes(800);
    let q = query_nodes(&g, 1, 5)[0];
    let reference = power_iteration(&g, q, &cfg());

    let (pregel, _) = PregelPpr::new(&g, 4).query(q, &cfg());
    let (blogel, _) = BlogelPpr::new(&g, 4, 8).query(q, &cfg());
    let hgpa = HgpaIndex::build(&g, &cfg(), &HgpaBuildOptions::default()).query(q);

    let n = g.node_count();
    assert!(l_inf(&reference, &pregel.to_dense(n)) < 1e-5);
    assert!(l_inf(&reference, &blogel.to_dense(n)) < 1e-5);
    assert!(l_inf(&reference, &hgpa.to_dense(n)) < 1e-4);
}

#[test]
fn communication_ordering_matches_figure22() {
    // HGPA (one round) < Blogel (block messages) < Pregel (vertex messages).
    let g = Dataset::Web.generate_with_nodes(1_200);
    let cfg = PprConfig::default();
    let queries = query_nodes(&g, 3, 9);
    let machines = 4;

    let idx = HgpaIndex::build(
        &g,
        &cfg,
        &HgpaBuildOptions {
            machines,
            ..Default::default()
        },
    );
    let cluster = Cluster::with_default_network();
    let pregel = PregelPpr::new(&g, machines);
    let blogel = BlogelPpr::new(&g, machines, machines * 2);

    let (mut h, mut p, mut b) = (0u64, 0u64, 0u64);
    for &q in &queries {
        h += cluster.query(&idx, q).total_bytes();
        p += pregel.query(q, &cfg).1.network_bytes;
        b += blogel.query(q, &cfg).1.network_bytes;
    }
    assert!(h < b, "HGPA {h} should be below Blogel {b}");
    assert!(b < p, "Blogel {b} should be below Pregel {p}");
    // The paper's headline: orders of magnitude between HGPA and Pregel+.
    assert!(p > 10 * h, "Pregel {p} vs HGPA {h}");
}

#[test]
fn fastppv_accuracy_scales_with_hub_count_and_prune() {
    let g = Dataset::Email.generate_with_nodes(800);
    let q = query_nodes(&g, 1, 13)[0];
    let reference = power_iteration(
        &g,
        q,
        &PprConfig {
            epsilon: 1e-9,
            ..Default::default()
        },
    );
    let n = g.node_count();
    let exactish = FastPpv::build(&g, 30, 0.0, &cfg()).query(q).to_dense(n);
    let pruned = FastPpv::build(&g, 30, 1e-3, &PprConfig::default())
        .query(q)
        .to_dense(n);
    assert!(l_inf(&reference, &exactish) < 1e-5);
    assert!(l_inf(&reference, &pruned) >= l_inf(&reference, &exactish));
    // Pruning visibly discards mass (the Figure 25 degradation source) —
    // at this scale rank metrics may survive, but retained probability
    // mass cannot.
    let mass = |v: &[f64]| v.iter().sum::<f64>();
    assert!(
        mass(&pruned) < mass(&exactish) - 5e-4,
        "pruned mass {} vs exact-ish {}",
        mass(&pruned),
        mass(&exactish)
    );
    assert!(precision_at_k(&reference, &pruned, 50) <= 1.0);
}

#[test]
fn monte_carlo_is_consistent_but_noisy() {
    let g = Dataset::Youtube.generate_with_nodes(600);
    let q = query_nodes(&g, 1, 17)[0];
    let reference = power_iteration(&g, q, &cfg());
    let mc = MonteCarloPpr::new(&g, &PprConfig::default(), 3);
    let est = mc.query(q, 200_000).to_dense(g.node_count());
    // Converges to the same distribution...
    let err = l_inf(&reference, &est);
    assert!(err < 0.01, "MC L_inf {err}");
    // ...but a few hundred thousand walks still cannot reach exact-method
    // accuracy (the paper's point about Monte Carlo approaches).
    assert!(err > 1e-5);
}

#[test]
fn engine_workers_do_not_change_results() {
    let g = Dataset::Web.generate_with_nodes(600);
    let q = 7;
    let (a, _) = PregelPpr::new(&g, 2).query(q, &cfg());
    let (b, _) = PregelPpr::new(&g, 8).query(q, &cfg());
    let n = g.node_count();
    assert!(l_inf(&a.to_dense(n), &b.to_dense(n)) < 1e-12);

    let (c, _) = BlogelPpr::new(&g, 2, 4).query(q, &cfg());
    let (d, _) = BlogelPpr::new(&g, 6, 12).query(q, &cfg());
    assert!(l_inf(&c.to_dense(n), &d.to_dense(n)) < 1e-6);
}
