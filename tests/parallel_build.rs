//! Offline-build exactness: a [`ParallelismMode::Threads`] build must be
//! **bit-identical** to the [`ParallelismMode::Sequential`] build — same
//! base vectors, same skeleton columns, same machine placement, same
//! build statistics — on any graph, machine count, and worker count, for
//! both GPA and HGPA. The builds differ only in *when* each work item
//! runs (and hence in the wall-clock / modeled timing fields of
//! [`OfflineReport`], which this suite checks for shape, not value).

use exact_ppr::core::gpa::{GpaBuildOptions, GpaIndex};
use exact_ppr::core::hgpa::{HgpaBuildOptions, HgpaIndex, OfflineReport};
use exact_ppr::core::{ParallelismMode, PprConfig};
use exact_ppr::graph::csr::from_edges;
use exact_ppr::graph::generators::{hierarchical_sbm, HsbmConfig};
use exact_ppr::graph::CsrGraph;
use exact_ppr::partition::HierarchyConfig;
use proptest::prelude::*;

/// Strategy: a random directed graph with 12..=80 nodes.
fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (12usize..=80).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 1..(n * 4));
        edges.prop_map(move |es| {
            let filtered: Vec<(u32, u32)> = es.into_iter().filter(|(u, v)| u != v).collect();
            from_edges(n, &filtered)
        })
    })
}

fn report_shape_ok(report: &OfflineReport, machines: usize) {
    assert_eq!(report.per_machine_seconds.len(), machines);
    assert!(report.per_machine_seconds.iter().all(|&s| s >= 0.0));
    assert!(report.wall_seconds > 0.0);
}

/// GPA: sequential vs threaded builds agree on every stored artifact.
fn gpa_differential(
    g: &CsrGraph,
    cfg: &PprConfig,
    machines: usize,
    workers: usize,
) -> Result<(), String> {
    let opts = GpaBuildOptions {
        machines,
        ..Default::default()
    };
    let (seq, seq_report) = GpaIndex::build_distributed(g, cfg, &opts);
    let threaded_opts = GpaBuildOptions {
        parallelism: ParallelismMode::Threads(workers),
        ..opts
    };
    let (thr, thr_report) = GpaIndex::build_distributed(g, cfg, &threaded_opts);

    if seq.base_vectors() != thr.base_vectors() {
        return Err("base vectors diverged".into());
    }
    if seq.skeleton_columns() != thr.skeleton_columns() {
        return Err("skeleton columns diverged".into());
    }
    if seq.hubs() != thr.hubs() {
        return Err("hub sets diverged".into());
    }
    if seq.machine_of_hub() != thr.machine_of_hub()
        || seq.machine_of_part() != thr.machine_of_part()
    {
        return Err("machine placement diverged".into());
    }
    if seq.stored_entries() != thr.stored_entries() {
        return Err("stored entry counts diverged".into());
    }
    report_shape_ok(&seq_report, machines);
    report_shape_ok(&thr_report, machines);
    Ok(())
}

/// HGPA: sequential vs threaded builds agree on every stored artifact.
fn hgpa_differential(
    g: &CsrGraph,
    cfg: &PprConfig,
    machines: usize,
    workers: usize,
) -> Result<(), String> {
    let opts = HgpaBuildOptions {
        machines,
        hierarchy: HierarchyConfig {
            max_leaf_size: 16,
            ..Default::default()
        },
        ..Default::default()
    };
    let (seq, seq_report) = HgpaIndex::build_distributed(g, cfg, &opts);
    let threaded_opts = HgpaBuildOptions {
        parallelism: ParallelismMode::Threads(workers),
        ..opts
    };
    let (thr, thr_report) = HgpaIndex::build_distributed(g, cfg, &threaded_opts);

    if seq.base_vectors() != thr.base_vectors() {
        return Err("base vectors diverged".into());
    }
    if seq.skeleton_columns() != thr.skeleton_columns() {
        return Err("skeleton columns diverged".into());
    }
    if seq.hub_ids() != thr.hub_ids() {
        return Err("hub ranks diverged".into());
    }
    if seq.machine_of_hub() != thr.machine_of_hub()
        || seq.machine_of_base() != thr.machine_of_base()
    {
        return Err("machine placement diverged".into());
    }
    if seq.stats() != thr.stats() {
        return Err(format!(
            "build stats diverged: {:?} vs {:?}",
            seq.stats(),
            thr.stats()
        ));
    }
    report_shape_ok(&seq_report, machines);
    report_shape_ok(&thr_report, machines);
    Ok(())
}

proptest! {
    // Default-config cases so the CI deep-test job can scale this suite
    // via `PROPTEST_CASES`.
    #![proptest_config(ProptestConfig::default())]

    #[test]
    fn gpa_threaded_build_is_bit_identical(
        g in arb_graph(),
        machines in 1usize..6,
        workers in 2usize..9,
    ) {
        gpa_differential(&g, &PprConfig::default(), machines, workers)?;
    }

    #[test]
    fn hgpa_threaded_build_is_bit_identical(
        g in arb_graph(),
        machines in 1usize..6,
        workers in 2usize..9,
    ) {
        hgpa_differential(&g, &PprConfig::default(), machines, workers)?;
    }
}

/// A community-structured graph big enough that every worker count gets
/// many items per machine — the deterministic pin for the quick profile.
#[test]
fn bigger_builds_stay_bit_identical_across_the_worker_sweep() {
    let g = hierarchical_sbm(
        &HsbmConfig {
            nodes: 400,
            depth: 4,
            locality: 0.9,
            ..Default::default()
        },
        17,
    );
    let cfg = PprConfig::default();
    for workers in [2usize, 4, 8] {
        gpa_differential(&g, &cfg, 6, workers).unwrap();
        hgpa_differential(&g, &cfg, 6, workers).unwrap();
    }
}

/// The modeled per-machine accounting stays a *distribution* of cost —
/// every machine gets timed items — and the wall/peak fields are sane,
/// threaded or not.
#[test]
fn offline_report_accounts_modeled_and_wall_time() {
    let g = hierarchical_sbm(
        &HsbmConfig {
            nodes: 500,
            depth: 4,
            locality: 0.9,
            ..Default::default()
        },
        23,
    );
    let cfg = PprConfig::default();
    for parallelism in [ParallelismMode::Sequential, ParallelismMode::Threads(4)] {
        let (_, report) = HgpaIndex::build_distributed(
            &g,
            &cfg,
            &HgpaBuildOptions {
                machines: 4,
                parallelism,
                hierarchy: HierarchyConfig {
                    max_leaf_size: 32,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        report_shape_ok(&report, 4);
        assert!(report.peak_scratch_bytes > 0, "{parallelism:?}");
        let total: f64 = report.per_machine_seconds.iter().sum();
        assert!(total > 0.0);
        // No machine's modeled share holds all the work (§5's claim).
        assert!(
            report.max_machine_seconds() < 0.9 * total,
            "{parallelism:?}: {:?}",
            report.per_machine_seconds
        );
    }
}
