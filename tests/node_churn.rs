//! Node-churn differential suite: the index and the dynamic server must
//! stay *exact while the node set changes*.
//!
//! Two property nets:
//!
//! * random mixed streams of queries, edge batches, and **node churn**
//!   (adds wired into the live graph, removals with incident-edge drops)
//!   driven through [`DynamicPprServer::apply_delta`], with every served
//!   answer compared bit for bit against a fresh cluster fan-out and the
//!   final maintained index against a from-scratch recomputation of every
//!   vector on the final graph (over the maintained hierarchy — the
//!   incremental path's own structure is part of what is being checked);
//! * repeated **cross-child insertions** that force promotion cascades at
//!   varying hierarchy levels: each one must promote exactly the inserted
//!   edge's source, restore the separation invariant everywhere, keep
//!   `promoted_hubs`/`dirty_nodes` consistent, and leave the index
//!   bit-identical to a scratch rebuild.

use exact_ppr::core::hgpa::{HgpaBuildOptions, HgpaIndex};
use exact_ppr::core::PprConfig;
use exact_ppr::graph::generators::{hierarchical_sbm, HsbmConfig};
use exact_ppr::graph::{apply_delta, delta, CsrGraph, EdgeUpdate, NodeId};
use exact_ppr::partition::HierarchyConfig;
use exact_ppr::prelude::{Cluster, DynamicPprServer, MaintenanceEngine, ServeConfig};
use exact_ppr::workload::{MixedEvent, MixedStream, MixedStreamConfig};
use proptest::prelude::*;

fn sample(n: usize, seed: u64) -> CsrGraph {
    hierarchical_sbm(
        &HsbmConfig {
            nodes: n,
            depth: 4,
            locality: 0.9,
            ..Default::default()
        },
        seed,
    )
}

fn opts(machines: usize, max_leaf_size: usize) -> HgpaBuildOptions {
    HgpaBuildOptions {
        machines,
        hierarchy: HierarchyConfig {
            max_leaf_size,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// The separation invariant, checked from first principles over the
/// public hierarchy: in every internal subgraph, an edge between two
/// non-hub members must stay inside one child.
fn separation_holds(idx: &HgpaIndex, g: &CsrGraph) -> Result<(), String> {
    let h = idx.hierarchy();
    for (sg, node) in h.nodes.iter().enumerate() {
        if node.children.is_empty() {
            continue;
        }
        for (u, v) in g.edges() {
            if node.members.binary_search(&u).is_err()
                || node.members.binary_search(&v).is_err()
                || node.hubs.binary_search(&u).is_ok()
                || node.hubs.binary_search(&v).is_ok()
            {
                continue;
            }
            let child_of = |x: NodeId| {
                node.children
                    .iter()
                    .position(|&c| h.nodes[c].members.binary_search(&x).is_ok())
            };
            match (child_of(u), child_of(v)) {
                (Some(a), Some(b)) if a == b => {}
                (Some(_), Some(_)) => {
                    return Err(format!(
                        "edge ({u}, {v}) crosses children of subgraph {sg} without a hub endpoint"
                    ));
                }
                _ => {
                    return Err(format!(
                        "a member of subgraph {sg} belongs to none of its children"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Drive one randomized churn scenario; every served answer is checked
/// bit for bit, and the final index against a scratch recomputation.
/// Returns (queries, edge batches, churn batches) for calibration.
fn churn_scenario(n: usize, seed: u64, events: usize) -> Result<(usize, usize, usize), String> {
    let machines = 3;
    let cfg = PprConfig::default();
    let g0 = sample(n, seed);
    let mut server = DynamicPprServer::build(
        g0.clone(),
        &cfg,
        &opts(machines, 12),
        ServeConfig {
            max_batch: 4,
            ..Default::default()
        },
    );
    let mut stream = MixedStream::new(
        &g0,
        MixedStreamConfig {
            update_rate: 0.25,
            updates_per_batch: 2,
            churn_rate: 0.3,
            zipf_exponent: 1.0,
            ..Default::default()
        },
        seed ^ 0xC0FE,
    );
    let mut g_shadow = g0; // maintained independently of the server
    let cluster = Cluster::with_default_network();
    let (mut queries, mut edge_batches, mut churn_batches) = (0usize, 0usize, 0usize);

    for event in stream.take(events) {
        match event {
            MixedEvent::Query(u) => {
                queries += 1;
                let served = server.query(u);
                let direct = cluster.query(server.index(), u).result;
                if served != direct {
                    return Err(format!(
                        "seed {seed}: served PPV of {u} diverged from a fresh fan-out"
                    ));
                }
            }
            MixedEvent::Update(batch) => {
                edge_batches += 1;
                g_shadow = delta::apply_edge_updates(&g_shadow, &batch);
                server
                    .apply_updates(&batch)
                    .map_err(|e| format!("seed {seed}: valid edge batch rejected: {e}"))?;
            }
            MixedEvent::Churn(d) => {
                churn_batches += 1;
                let shadow_applied = apply_delta(&g_shadow, &d)
                    .map_err(|e| format!("seed {seed}: stream emitted invalid churn: {e}"))?;
                g_shadow = shadow_applied.graph;
                let out = server
                    .apply_delta(&d)
                    .map_err(|e| format!("seed {seed}: valid churn batch rejected: {e}"))?;
                if out.stats.nodes_added != shadow_applied.added.len()
                    || out.stats.nodes_removed != shadow_applied.removed.len()
                {
                    return Err(format!("seed {seed}: churn accounting diverged"));
                }
                // Removed nodes answer empty immediately; the stats'
                // touched set names every churned node.
                for &v in &shadow_applied.removed {
                    if server.index().is_live(v) || server.query(v).nnz() != 0 {
                        return Err(format!("seed {seed}: removed node {v} still serves"));
                    }
                    if !out.stats.dirty_nodes.contains(&v) {
                        return Err(format!("seed {seed}: removed {v} missing from dirty_nodes"));
                    }
                }
                for &v in &shadow_applied.added {
                    if !server.index().is_live(v) {
                        return Err(format!("seed {seed}: added node {v} is not live"));
                    }
                }
            }
        }
    }

    // The server's graph must track the independently maintained shadow.
    if server.graph().node_count() != g_shadow.node_count()
        || !server.graph().edges().eq(g_shadow.edges())
    {
        return Err(format!("seed {seed}: server graph diverged from shadow"));
    }

    // Updater differential: bit-identical to a from-scratch recomputation
    // of every vector on the final (post-churn) graph.
    let rebuilt = HgpaIndex::build_with_hierarchy(
        server.graph(),
        &cfg,
        &opts(machines, 12),
        server.index().hierarchy().clone(),
    );
    for u in 0..server.graph().node_count() as NodeId {
        if u % 5 != 0 && server.index().is_live(u) {
            continue; // all dead nodes + every 5th live node
        }
        if server.index().query(u) != rebuilt.query(u) {
            return Err(format!(
                "seed {seed}: maintained index diverged from scratch rebuild at source {u}"
            ));
        }
    }
    separation_holds(server.index(), server.graph()).map_err(|e| format!("seed {seed}: {e}"))?;
    Ok((queries, edge_batches, churn_batches))
}

proptest! {
    // Default-config cases so the CI deep-test job can scale this suite
    // via `PROPTEST_CASES`.
    #![proptest_config(ProptestConfig::default())]

    #[test]
    fn served_answers_survive_node_churn_streams(seed in 0u64..10_000) {
        let (q, e, c) = churn_scenario(64, seed, 18)?;
        prop_assert!(q + e + c == 18);
    }

    #[test]
    fn promotion_cascades_restore_separation(seed in 0u64..10_000) {
        let machines = 3;
        let cfg = PprConfig::default();
        let mut g = sample(96, seed);
        let mut idx = HgpaIndex::build(&g, &cfg, &opts(machines, 8));
        let mut engine = MaintenanceEngine::new();
        let mut promoted_total = 0usize;

        for round in 0..6usize {
            // Pick a cross-leaf non-edge: its LCA is an internal subgraph
            // whose separation the insertion breaks, forcing a promotion
            // at that level (varying the leaves varies the level).
            let leaves: Vec<usize> = idx.hierarchy().leaves().collect();
            let la = leaves[(seed as usize + round) % leaves.len()];
            let lb = leaves[(seed as usize / 3 + 2 * round + 1) % leaves.len()];
            if la == lb {
                continue;
            }
            let pick = |l: usize, salt: usize| -> Option<NodeId> {
                let m = &idx.hierarchy().nodes[l].members;
                if m.is_empty() { None } else { Some(m[salt % m.len()]) }
            };
            let (Some(u), Some(v)) = (pick(la, seed as usize + round), pick(lb, round)) else {
                continue;
            };
            if u == v || g.has_edge(u, v) {
                continue;
            }
            g = delta::apply_edge_updates(&g, &[EdgeUpdate::Insert(u, v)]);
            let stats = engine
                .apply_edges(&mut idx, &g, &[(u, v)])
                .map_err(|e| format!("seed {seed} round {round}: {e}"))?;

            // Exactly the inserted edge's source is promoted, it is a hub
            // now, and every promoted hub is in the touched set.
            prop_assert!(stats.promoted_hubs == vec![u],
                "round {round}: promoted {:?}, expected [{u}]", stats.promoted_hubs);
            prop_assert!(idx.hierarchy().hub_level[u as usize].is_some());
            for &h in &stats.promoted_hubs {
                prop_assert!(stats.dirty_nodes.contains(&h));
            }
            prop_assert!(stats.dirty_nodes.contains(&u) && stats.dirty_nodes.contains(&v));
            promoted_total += stats.promoted_hubs.len();

            separation_holds(&idx, &g).map_err(|e| format!("seed {seed} round {round}: {e}"))?;
        }
        prop_assert!(promoted_total >= 2, "only {promoted_total} promotions in 6 rounds");

        // After the whole cascade: bit-identical to a scratch rebuild over
        // the maintained hierarchy.
        let rebuilt =
            HgpaIndex::build_with_hierarchy(&g, &cfg, &opts(machines, 8), idx.hierarchy().clone());
        for s in (0..96u32).step_by(7) {
            prop_assert!(idx.query(s) == rebuilt.query(s), "source {s} diverged");
        }
    }
}

#[test]
fn churn_scenario_exercises_all_event_kinds() {
    // One deterministic, bigger run — and proof the scenario actually
    // mixes reads, edge writes, and node churn rather than vacuously
    // passing.
    let (queries, edge_batches, churn_batches) = churn_scenario(120, 1234, 60).unwrap();
    assert!(queries >= 20, "only {queries} queries");
    assert!(edge_batches >= 4, "only {edge_batches} edge batches");
    assert!(churn_batches >= 8, "only {churn_batches} churn batches");
}
