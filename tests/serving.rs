//! Serving-layer exactness: the batching/caching/top-k front-end must be
//! indistinguishable from querying the index directly —
//!
//! * cached answers are **bit-identical** to freshly computed ones;
//! * batched answers equal per-query answers;
//! * the top-k early cut equals the full sort (proptest-pinned);
//! * everything agrees with the dense ground-truth oracle;
//! * eviction under a tiny cache never affects results.

use exact_ppr::cluster::Cluster;
use exact_ppr::core::gpa::{GpaBuildOptions, GpaIndex};
use exact_ppr::core::hgpa::{HgpaBuildOptions, HgpaIndex};
use exact_ppr::core::sparse::SparseVector;
use exact_ppr::core::PprConfig;
use exact_ppr::graph::dense::dense_ppv;
use exact_ppr::graph::generators::{hierarchical_sbm, HsbmConfig};
use exact_ppr::graph::CsrGraph;
use exact_ppr::partition::HierarchyConfig;
use exact_ppr::prelude::{PprServer, Request, Response, ServeConfig};
use exact_ppr::workload::ZipfQueryStream;
use proptest::prelude::*;

fn sample(n: usize, seed: u64) -> CsrGraph {
    hierarchical_sbm(
        &HsbmConfig {
            nodes: n,
            depth: 4,
            locality: 0.9,
            ..Default::default()
        },
        seed,
    )
}

fn tight() -> PprConfig {
    PprConfig {
        epsilon: 1e-9,
        ..Default::default()
    }
}

fn hgpa(g: &CsrGraph, machines: usize) -> HgpaIndex {
    HgpaIndex::build(
        g,
        &tight(),
        &HgpaBuildOptions {
            machines,
            hierarchy: HierarchyConfig {
                max_leaf_size: 16,
                ..Default::default()
            },
            ..Default::default()
        },
    )
}

#[test]
fn cached_and_fresh_results_bit_identical() {
    let g = sample(220, 3);
    let idx = hgpa(&g, 4);
    let mut server = PprServer::new(&idx, ServeConfig::default());
    let mut uncached = PprServer::new(
        &idx,
        ServeConfig {
            cache_capacity_bytes: 0,
            ..Default::default()
        },
    );
    for u in [0u32, 57, 140, 219] {
        let fresh = server.query(u); // miss: computed via fan-out
        let warm = server.query(u); // hit: straight from cache
        assert_eq!(fresh, warm, "u {u}: cached PPV must be bit-identical");
        assert_eq!(
            fresh,
            uncached.query(u),
            "u {u}: cache on/off must not change the answer"
        );
    }
    assert_eq!(server.stats().cached_sources, 4);
    assert_eq!(server.cache_stats().hits, 4);
}

#[test]
fn server_matches_dense_oracle_hgpa_and_gpa() {
    let g = sample(200, 7);
    let h = hgpa(&g, 4);
    let gp = GpaIndex::build(
        &g,
        &tight(),
        &GpaBuildOptions {
            machines: 3,
            ..Default::default()
        },
    );
    let mut hs = PprServer::new(&h, ServeConfig::default());
    let mut gs = PprServer::new(&gp, ServeConfig::default());
    for u in [0u32, 99, 199] {
        let exact = dense_ppv(&g, u, 0.15);
        for (label, got) in [("hgpa", hs.query(u)), ("gpa", gs.query(u))] {
            for v in 0..200u32 {
                assert!(
                    (exact[v as usize] - got.get(v)).abs() < 1e-5,
                    "{label} u {u} v {v}"
                );
            }
        }
    }
}

#[test]
fn batch_answers_equal_per_query_answers() {
    let g = sample(240, 11);
    let idx = hgpa(&g, 4);
    let requests = vec![
        Request::Ppv(5),
        Request::TopK { source: 5, k: 10 }, // overlaps the first source
        Request::Preference(vec![(5, 0.5), (120, 0.5)]),
        Request::Ppv(120),
        Request::TopK { source: 200, k: 3 },
        Request::Preference(vec![(200, 0.2), (5, 0.8)]),
    ];
    let mut batched = PprServer::new(&idx, ServeConfig::default());
    let mut sequential = PprServer::new(&idx, ServeConfig::default());
    let all = batched.run_batch(&requests);
    let one_by_one: Vec<Response> = requests
        .iter()
        .map(|r| {
            sequential
                .run_batch(std::slice::from_ref(r))
                .responses
                .pop()
                .unwrap()
        })
        .collect();
    assert_eq!(all.responses, one_by_one);
    // The batch needed one round for 3 distinct sources; sequentially the
    // cache carried them across requests.
    assert_eq!(all.fresh_sources, 3);
    assert_eq!(batched.stats().rounds, 1);
}

#[test]
fn batch_equals_unbatched_without_cache_too() {
    // Batching alone (cache disabled) must also be answer-preserving.
    let g = sample(180, 13);
    let idx = hgpa(&g, 3);
    let no_cache = ServeConfig {
        cache_capacity_bytes: 0,
        ..Default::default()
    };
    let sources = [4u32, 90, 90, 171, 4];
    let requests: Vec<Request> = sources.iter().map(|&u| Request::Ppv(u)).collect();
    let mut batched = PprServer::new(&idx, no_cache);
    let responses = batched.run_batch(&requests).responses;
    for (&u, resp) in sources.iter().zip(&responses) {
        let direct = Cluster::with_default_network().query(&idx, u).result;
        assert_eq!(resp.as_ppv().unwrap(), &direct, "u {u}");
    }
    // Duplicates dedupe inside the batch even with no cache.
    assert_eq!(batched.stats().fresh_sources, 3);
}

#[test]
fn server_top_k_equals_full_sort_top_k() {
    let g = sample(250, 17);
    let idx = hgpa(&g, 5);
    let mut server = PprServer::new(&idx, ServeConfig::default());
    for u in [1u32, 130, 249] {
        // The served PPV and its full sort are the oracle: the early cut
        // must match it bit for bit, at every k.
        let ppv = server.query(u);
        for k in [0usize, 1, 7, 50, 10_000] {
            assert_eq!(server.top_k(u, k), ppv.top_k(k), "u {u} k {k}");
        }
        // And against the centralized index, scores agree to fp rounding
        // (coordinator sums machine replies in a different order).
        let (central, served) = (idx.query_top_k(u, 10), server.top_k(u, 10));
        for (c, s) in central.iter().zip(&served) {
            assert!((c.1 - s.1).abs() < 1e-12, "u {u}: {c:?} vs {s:?}");
        }
    }
}

#[test]
fn preference_requests_follow_linearity() {
    let g = sample(200, 19);
    let idx = hgpa(&g, 4);
    let mut server = PprServer::new(&idx, ServeConfig::default());
    let pref = [(10u32, 0.3), (60u32, 0.5), (190u32, 0.2)];
    let served = server.query_preference(&pref);
    let direct = idx.query_preference(&pref);
    for v in 0..200u32 {
        assert!(
            (served.get(v) - direct.get(v)).abs() < 1e-12,
            "v {v}: {} vs {}",
            served.get(v),
            direct.get(v)
        );
    }
}

#[test]
fn eviction_under_tiny_cache_never_changes_answers() {
    let g = sample(230, 23);
    let idx = hgpa(&g, 4);
    // Room for only a few PPVs: a Zipf stream forces constant eviction.
    let mut server = PprServer::new(
        &idx,
        ServeConfig {
            cache_capacity_bytes: 8 * 1024,
            max_batch: 4,
            ..Default::default()
        },
    );
    let mut stream = ZipfQueryStream::new(&g, 1.0, 31);
    for u in stream.take(60) {
        assert_eq!(
            server.query(u),
            Cluster::with_default_network().query(&idx, u).result,
            "u {u}"
        );
        assert!(server.cache_bytes() <= 8 * 1024);
    }
    assert!(
        server.cache_stats().evictions > 0,
        "tiny cache should have evicted"
    );
}

#[test]
fn serve_chunks_respect_max_batch() {
    let g = sample(160, 37);
    let idx = hgpa(&g, 3);
    let mut server = PprServer::new(
        &idx,
        ServeConfig {
            max_batch: 4,
            ..Default::default()
        },
    );
    let requests: Vec<Request> = (0..10).map(|i| Request::Ppv(i * 7)).collect();
    let responses = server.serve(&requests);
    assert_eq!(responses.len(), 10);
    assert_eq!(server.stats().batches, 3); // 4 + 4 + 2
    let cluster = Cluster::with_default_network();
    for (req, resp) in requests.iter().zip(&responses) {
        let Request::Ppv(u) = req else { unreachable!() };
        assert_eq!(
            resp.as_ppv().unwrap(),
            &cluster.query(&idx, *u).result,
            "u {u}"
        );
    }
}

fn arb_sparse_vector() -> impl Strategy<Value = SparseVector> {
    // Small value alphabet forces heavy ties — the hard case for the
    // early cut's tie-breaking.
    proptest::collection::vec((0u32..80, 0u8..6), 0..60).prop_map(|entries| {
        let mut seen = std::collections::HashSet::new();
        SparseVector::from_entries(
            entries
                .into_iter()
                .filter(|(id, _)| seen.insert(*id))
                .map(|(id, v)| (id, v as f64 / 10.0 + 1e-3))
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn topk_early_cut_equals_full_sort(v in arb_sparse_vector(), k in 0usize..90) {
        prop_assert_eq!(v.top_k_early_cut(k), v.top_k(k));
    }

    #[test]
    fn served_ppv_equals_index_on_random_graphs(seed in 0u64..500) {
        let g = sample(60, seed);
        let idx = HgpaIndex::build(
            &g,
            &PprConfig::default(),
            &HgpaBuildOptions {
                machines: 3,
                hierarchy: HierarchyConfig { max_leaf_size: 8, ..Default::default() },
                ..Default::default()
            },
        );
        let mut server = PprServer::new(&idx, ServeConfig::default());
        let u = (seed % 60) as u32;
        let served = server.query(u);
        let direct = idx.query(u);
        for v in 0..60u32 {
            prop_assert!((served.get(v) - direct.get(v)).abs() < 1e-12, "v {}", v);
        }
        prop_assert_eq!(server.top_k(u, 10), served.top_k(10));
    }
}
