//! Property-based invariants over randomly generated graphs:
//!
//! * partitioning: hubs separate subgraphs; homes partition the node set;
//! * PPV axioms: non-negativity, mass bound, monotone tolerance error;
//! * decomposition: HGPA ≡ power iteration on arbitrary random graphs.

use exact_ppr::core::hgpa::{HgpaBuildOptions, HgpaIndex};
use exact_ppr::core::power::power_iteration;
use exact_ppr::core::sparse::SparseVector;
use exact_ppr::core::PprConfig;
use exact_ppr::graph::csr::from_edges;
use exact_ppr::graph::CsrGraph;
use exact_ppr::partition::{Hierarchy, HierarchyConfig};
use proptest::prelude::*;

/// Strategy: a random directed graph with 8..=60 nodes.
fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (8usize..=60).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 1..(n * 4));
        edges.prop_map(move |es| {
            let filtered: Vec<(u32, u32)> = es.into_iter().filter(|(u, v)| u != v).collect();
            from_edges(n, &filtered)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hierarchy_homes_partition_nodes(g in arb_graph()) {
        let h = Hierarchy::build(&g, &HierarchyConfig {
            max_leaf_size: 8,
            ..Default::default()
        });
        let mut count = vec![0usize; g.node_count()];
        for node in &h.nodes {
            if node.is_leaf() {
                for &v in &node.members {
                    count[v as usize] += 1;
                }
            } else {
                for &v in &node.hubs {
                    count[v as usize] += 1;
                }
            }
        }
        prop_assert!(count.iter().all(|&c| c == 1));
    }

    #[test]
    fn hierarchy_hubs_separate_children(g in arb_graph()) {
        let h = Hierarchy::build(&g, &HierarchyConfig {
            max_leaf_size: 8,
            ..Default::default()
        });
        for node in &h.nodes {
            if node.is_leaf() {
                continue;
            }
            let child_of = |v: u32| -> Option<usize> {
                node.children
                    .iter()
                    .position(|&c| h.nodes[c].members.binary_search(&v).is_ok())
            };
            for &u in &node.members {
                if node.hubs.binary_search(&u).is_ok() {
                    continue;
                }
                for &v in g.out_neighbors(u) {
                    if node.members.binary_search(&v).is_err()
                        || node.hubs.binary_search(&v).is_ok()
                    {
                        continue;
                    }
                    prop_assert_eq!(child_of(u), child_of(v), "edge crosses children");
                }
            }
        }
    }

    #[test]
    fn ppv_axioms_hold(g in arb_graph(), source in 0u32..8) {
        let source = source % g.node_count() as u32;
        let cfg = PprConfig { epsilon: 1e-8, ..Default::default() };
        let idx = HgpaIndex::build(&g, &cfg, &HgpaBuildOptions {
            hierarchy: HierarchyConfig { max_leaf_size: 8, ..Default::default() },
            ..Default::default()
        });
        let ppv = idx.query(source);
        // Non-negative (up to float fuzz) and total mass at most 1.
        for (v, x) in ppv.iter() {
            prop_assert!(x > -1e-9, "negative score at {v}: {x}");
        }
        prop_assert!(ppv.l1_norm() <= 1.0 + 1e-6);
        // The source always keeps at least its α self-mass.
        prop_assert!(ppv.get(source) >= cfg.alpha - 1e-6);
    }

    #[test]
    fn hgpa_matches_power_iteration(g in arb_graph(), source in 0u32..8) {
        let source = source % g.node_count() as u32;
        let cfg = PprConfig { epsilon: 1e-9, ..Default::default() };
        let idx = HgpaIndex::build(&g, &cfg, &HgpaBuildOptions {
            hierarchy: HierarchyConfig { max_leaf_size: 8, ..Default::default() },
            ..Default::default()
        });
        let a = idx.query(source);
        let b = power_iteration(&g, source, &cfg);
        for v in 0..g.node_count() as u32 {
            prop_assert!((a.get(v) - b[v as usize]).abs() < 1e-5,
                "v {}: {} vs {}", v, a.get(v), b[v as usize]);
        }
    }

    #[test]
    fn sparse_vector_merge_is_linear(
        a in proptest::collection::btree_map(0u32..50, 0.0f64..1.0, 0..20),
        b in proptest::collection::btree_map(0u32..50, 0.0f64..1.0, 0..20),
        scale in -2.0f64..2.0,
    ) {
        let sa = SparseVector::from_entries(a.iter().map(|(&k, &v)| (k, v)).collect());
        let sb = SparseVector::from_entries(b.iter().map(|(&k, &v)| (k, v)).collect());
        let merged = sa.add_scaled(&sb, scale);
        for v in 0..50u32 {
            let want = sa.get(v) + scale * sb.get(v);
            prop_assert!((merged.get(v) - want).abs() < 1e-12);
        }
    }

    #[test]
    fn tolerance_truncation_only_drops_small(
        entries in proptest::collection::btree_map(0u32..60, 1e-8f64..1.0, 1..25),
        threshold in 1e-6f64..1e-2,
    ) {
        let mut v = SparseVector::from_entries(entries.iter().map(|(&k, &x)| (k, x)).collect());
        let before = v.l1_norm();
        let dropped = v.truncate_below(threshold);
        prop_assert!(v.iter().all(|(_, x)| x.abs() > threshold));
        // Dropped mass is bounded by count × threshold.
        prop_assert!(before - v.l1_norm() <= dropped as f64 * threshold + 1e-12);
    }

    #[test]
    fn top_k_select_equals_reference_sort(
        // Values drawn from a small grid so ties (the id-tiebreak path)
        // occur constantly; negative values and zero included.
        entries in proptest::collection::btree_map(0u32..200, -4i8..=4, 0..120),
        k in 0usize..130,
    ) {
        let v = SparseVector::from_entries(
            entries.iter().map(|(&id, &g)| (id, g as f64 * 0.25)).collect(),
        );
        // The pre-optimization implementation: clone everything, fully
        // sort, truncate. `top_k` must stay element-for-element equal.
        let mut reference: Vec<(u32, f64)> = v.iter().collect();
        reference.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        reference.truncate(k);
        prop_assert_eq!(v.top_k(k), reference);
    }
}
