//! Hostile-input suite for the storage tier: a loader facing a
//! truncated, bit-flipped, zero-filled, version-bumped, or deliberately
//! forged index file must return `Err` — it must never panic, and never
//! allocate from a lying length field (allocations are capped by the
//! bytes actually present). Every byte of the format is covered by the
//! magic check, the header CRC, or a section CRC, so *any* single-byte
//! mutation of a valid file must be detected.
//!
//! Forgeries go further than random corruption: they re-compute the
//! section and header CRCs after tampering (via the public
//! [`sections`] introspection + `codec::crc32`), so the container looks
//! internally consistent and only the decode-level validation can
//! reject it.

use exact_ppr::core::codec::crc32;
use exact_ppr::core::gpa::{GpaBuildOptions, GpaIndex};
use exact_ppr::core::hgpa::{HgpaBuildOptions, HgpaIndex};
use exact_ppr::core::persist::{
    load_gpa, load_hgpa, load_index, save_gpa, save_hgpa, sections,
};
use exact_ppr::core::PprConfig;
use exact_ppr::graph::generators::{hierarchical_sbm, HsbmConfig};
use proptest::prelude::*;

fn sample_files() -> (Vec<u8>, Vec<u8>) {
    let g = hierarchical_sbm(
        &HsbmConfig {
            nodes: 120,
            ..Default::default()
        },
        29,
    );
    let cfg = PprConfig::default();
    let mut gpa_buf = Vec::new();
    save_gpa(&GpaIndex::build(&g, &cfg, &GpaBuildOptions::default()), &mut gpa_buf).unwrap();
    let mut hgpa_buf = Vec::new();
    save_hgpa(
        &HgpaIndex::build(&g, &cfg, &HgpaBuildOptions::default()),
        &mut hgpa_buf,
    )
    .unwrap();
    (gpa_buf, hgpa_buf)
}

/// Every strict prefix of a valid file must fail to load (the full file
/// must load). Sweeps every length for the header region and strides
/// through the payloads.
#[test]
fn truncation_always_errs() {
    let (gpa, hgpa) = sample_files();
    for buf in [&gpa, &hgpa] {
        assert!(load_index(buf.as_slice()).is_ok(), "intact file must load");
        let mut cuts: Vec<usize> = (0..200.min(buf.len())).collect();
        cuts.extend((200..buf.len()).step_by(41));
        cuts.push(buf.len() - 1);
        for cut in cuts {
            assert!(
                load_index(&buf[..cut]).is_err(),
                "prefix of {cut}/{} bytes must not load",
                buf.len()
            );
        }
    }
}

/// Any single flipped bit is caught by a checksum (or the magic/length
/// checks) — swept across every byte of the file, all loaders.
#[test]
fn single_byte_corruption_always_errs() {
    let (gpa, hgpa) = sample_files();
    type Rejects = fn(&[u8]) -> bool;
    let cases: [(&Vec<u8>, Rejects); 2] = [
        (&gpa, |b| load_gpa(b).is_err()),
        (&hgpa, |b| load_hgpa(b).is_err()),
    ];
    for (buf, load) in cases {
        for pos in 0..buf.len() {
            let mut bad = buf.clone();
            bad[pos] ^= 0x40;
            assert!(load(&bad), "flip at byte {pos}/{} must not load", buf.len());
            assert!(
                load_index(bad.as_slice()).is_err(),
                "load_index must reject flip at byte {pos}"
            );
        }
    }
}

/// Zero-filled ranges (a sparse-file / failed-write signature) must be
/// rejected wherever they land.
#[test]
fn zero_fill_always_errs() {
    let (_, hgpa) = sample_files();
    let n = hgpa.len();
    for (start, len) in [(0, 4), (4, 8), (16, 20), (n / 2, 64), (n - 32, 32), (0, n)] {
        let mut bad = hgpa.clone();
        for b in &mut bad[start..(start + len).min(n)] {
            *b = 0;
        }
        assert!(
            load_hgpa(bad.as_slice()).is_err(),
            "zero-fill [{start}, +{len}) must not load"
        );
    }
}

/// Patch a little-endian u32 field and re-seal the header CRC so the
/// container is self-consistent again.
fn patch_header_u32(buf: &[u8], offset: usize, value: u32) -> Vec<u8> {
    let secs = sections(buf).expect("valid input file");
    let header_len = 16 + 16 * secs.len();
    let mut out = buf.to_vec();
    out[offset..offset + 4].copy_from_slice(&value.to_le_bytes());
    let crc = crc32(&out[..header_len]);
    out[header_len..header_len + 4].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Old (v1) and future versions are refused by the version gate itself,
/// even with a valid header CRC.
#[test]
fn version_bump_errs_with_version_message() {
    let (_, hgpa) = sample_files();
    for version in [0u32, 1, 3, u32::MAX] {
        let bad = patch_header_u32(&hgpa, 4, version);
        let err = load_hgpa(bad.as_slice()).unwrap_err();
        assert!(
            err.to_string().contains("version"),
            "version {version}: {err}"
        );
    }
}

/// A re-sealed kind field still cannot smuggle HGPA sections through the
/// GPA decoder (and vice versa), and unknown kinds are refused outright.
#[test]
fn kind_forgery_errs() {
    let (gpa, hgpa) = sample_files();
    // Unknown kind code.
    let bad = patch_header_u32(&hgpa, 8, 7);
    assert!(load_index(bad.as_slice()).is_err());
    // HGPA bytes relabeled as GPA: the GPA decoder finds no PART section.
    let bad = patch_header_u32(&hgpa, 8, 1);
    assert!(load_index(bad.as_slice()).is_err());
    // GPA bytes relabeled as HGPA.
    let bad = patch_header_u32(&gpa, 8, 2);
    assert!(load_index(bad.as_slice()).is_err());
    // Honest kind mismatch (no forgery): typed loaders refuse early.
    assert!(load_gpa(hgpa.as_slice()).is_err());
    assert!(load_hgpa(gpa.as_slice()).is_err());
}

/// Forge a section's payload bytes and re-seal both CRCs, so only
/// decode-level validation stands between the forgery and the allocator.
fn forge_section(buf: &[u8], tag: &[u8; 4], tamper: impl FnOnce(&mut [u8])) -> Vec<u8> {
    let secs = sections(buf).expect("valid input file");
    let header_len = 16 + 16 * secs.len();
    let mut out = buf.to_vec();
    let (idx, sec) = secs
        .iter()
        .enumerate()
        .find(|(_, s)| &s.tag == tag)
        .expect("section present");
    tamper(&mut out[sec.offset..sec.offset + sec.len]);
    let crc = crc32(&out[sec.offset..sec.offset + sec.len]);
    let table_entry = 16 + 16 * idx;
    out[table_entry + 12..table_entry + 16].copy_from_slice(&crc.to_le_bytes());
    let hcrc = crc32(&out[..header_len]);
    out[header_len..header_len + 4].copy_from_slice(&hcrc.to_le_bytes());
    out
}

/// A length field claiming ~2^60 vectors over a few real bytes must be
/// rejected by the byte-budget check before any allocation happens —
/// this is the anti-OOM property.
#[test]
fn lying_vector_count_is_rejected_cheaply() {
    let (gpa, hgpa) = sample_files();
    // Overwrite the BASE section's leading count varint with a huge one
    // (10 bytes of 0xFF decodes as a varint overflow; 9 bytes of 0xFF
    // followed by 0x01 decodes as a colossal count). Both must fail.
    for lead in [[0xFFu8; 10].as_slice(), &[0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01]] {
        let bad = forge_section(&hgpa, b"BASE", |payload| {
            let n = lead.len().min(payload.len());
            payload[..n].copy_from_slice(&lead[..n]);
        });
        assert!(load_hgpa(bad.as_slice()).is_err());
        let bad = forge_section(&gpa, b"BASE", |payload| {
            let n = lead.len().min(payload.len());
            payload[..n].copy_from_slice(&lead[..n]);
        });
        assert!(load_gpa(bad.as_slice()).is_err());
    }
}

/// A section table whose length field points far past the end of the
/// file (re-sealed header CRC) is a truncation error, not an allocation.
#[test]
fn lying_section_length_is_rejected_cheaply() {
    let (_, hgpa) = sample_files();
    let secs = sections(&hgpa).expect("valid");
    let header_len = 16 + 16 * secs.len();
    let mut bad = hgpa.clone();
    // First section's len field lives at table offset +4.
    bad[16 + 4..16 + 12].copy_from_slice(&(1u64 << 50).to_le_bytes());
    let crc = crc32(&bad[..header_len]);
    bad[header_len..header_len + 4].copy_from_slice(&crc.to_le_bytes());
    assert!(load_hgpa(bad.as_slice()).is_err());
}

/// Structural forgeries inside a re-sealed container: out-of-range
/// machine ids, out-of-bounds node ids, and a corrupt config all surface
/// as decode errors.
#[test]
fn resealed_structural_forgeries_err() {
    let (_, hgpa) = sample_files();
    // CFG: alpha bits -> NaN.
    let bad = forge_section(&hgpa, b"CFG\0", |p| {
        p[..8].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
    });
    assert!(load_hgpa(bad.as_slice()).is_err());
    // CFG: machine count zero (breaks every placement bound).
    let bad = forge_section(&hgpa, b"CFG\0", |p| {
        let len = p.len();
        p[len - 1] = 0;
    });
    assert!(load_hgpa(bad.as_slice()).is_err());
    // PLAC: saturate everything — hub ids / machine ids blow their bounds.
    let bad = forge_section(&hgpa, b"PLAC", |p| {
        for b in p.iter_mut() {
            *b = 0x7F;
        }
    });
    assert!(load_hgpa(bad.as_slice()).is_err());
}

/// Junk that is not an index file at all: wrong magic, empty input,
/// short input.
#[test]
fn non_index_bytes_err() {
    assert!(load_index(&b""[..]).is_err());
    assert!(load_index(&b"PPR"[..]).is_err());
    assert!(load_index(&b"hello world, definitely not an index"[..]).is_err());
    let err = load_index(&b"NOPE0000000000000000"[..]).unwrap_err();
    assert!(err.to_string().contains("magic"), "{err}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // Randomized single-byte corruption over random positions: always
    // `Err`, never a panic, for every loader entry point.
    #[test]
    fn random_byte_corruption_never_panics(pos in 0usize..100_000, delta in 1u8..=255) {
        let (gpa, hgpa) = sample_files();
        for buf in [&gpa, &hgpa] {
            let mut bad = buf.clone();
            let p = pos % bad.len();
            bad[p] ^= delta;
            prop_assert!(load_index(bad.as_slice()).is_err(), "byte {p} xor {delta:#x}");
            prop_assert!(load_gpa(bad.as_slice()).is_err());
            prop_assert!(load_hgpa(bad.as_slice()).is_err());
        }
    }
}
