//! Cross-crate exactness: every algorithm in the workspace agrees with the
//! dense linear-system oracle and with each other (paper Theorems 1 & 3),
//! across graph shapes the paper's datasets exhibit — community structure,
//! dangling nodes, high reciprocity, disconnected pieces.

use exact_ppr::core::gpa::{GpaBuildOptions, GpaIndex};
use exact_ppr::core::hgpa::{HgpaBuildOptions, HgpaIndex};
use exact_ppr::core::jw::JwIndex;
use exact_ppr::core::power::power_iteration;
use exact_ppr::core::PprConfig;
use exact_ppr::graph::dense::dense_ppv;
use exact_ppr::graph::generators::{gnp_directed, hierarchical_sbm, HsbmConfig};
use exact_ppr::graph::{CsrGraph, GraphBuilder};
use exact_ppr::partition::HierarchyConfig;

const ALPHA: f64 = 0.15;

fn tight() -> PprConfig {
    PprConfig {
        epsilon: 1e-9,
        ..Default::default()
    }
}

fn check_all_algorithms(g: &CsrGraph, queries: &[u32], tol: f64) {
    let cfg = tight();
    let hgpa = HgpaIndex::build(
        g,
        &cfg,
        &HgpaBuildOptions {
            hierarchy: HierarchyConfig {
                max_leaf_size: 16,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let gpa = GpaIndex::build(g, &cfg, &GpaBuildOptions::default());
    let jw = JwIndex::build(g, gpa.hubs(), &cfg);

    for &u in queries {
        let oracle = dense_ppv(g, u, ALPHA);
        let from_power = power_iteration(g, u, &cfg);
        let from_hgpa = hgpa.query(u);
        let from_gpa = gpa.query(u);
        let from_jw = jw.query(u);
        for v in 0..g.node_count() as u32 {
            let o = oracle[v as usize];
            assert!((from_power[v as usize] - o).abs() < tol, "power u={u} v={v}");
            assert!((from_hgpa.get(v) - o).abs() < tol, "hgpa u={u} v={v}: {} vs {o}", from_hgpa.get(v));
            assert!((from_gpa.get(v) - o).abs() < tol, "gpa u={u} v={v}: {} vs {o}", from_gpa.get(v));
            assert!((from_jw.get(v) - o).abs() < tol, "jw u={u} v={v}: {} vs {o}", from_jw.get(v));
        }
    }
}

#[test]
fn community_graph_all_agree() {
    let g = hierarchical_sbm(
        &HsbmConfig {
            nodes: 220,
            depth: 4,
            locality: 0.9,
            ..Default::default()
        },
        101,
    );
    check_all_algorithms(&g, &[0, 55, 110, 219], 1e-5);
}

#[test]
fn dangling_heavy_graph_all_agree() {
    // Email-like: min degree 1, many dangling after dedup + sparse tail.
    let mut b = GraphBuilder::new(150);
    let core = hierarchical_sbm(
        &HsbmConfig {
            nodes: 100,
            depth: 3,
            ..Default::default()
        },
        5,
    );
    for (u, v) in core.edges() {
        b.push_edge(u, v);
    }
    // 50 extra nodes that only receive edges (dangling).
    for i in 0..50u32 {
        b.push_edge(i % 100, 100 + i);
    }
    let g = b.build();
    assert!(g.dangling_nodes().len() >= 50);
    check_all_algorithms(&g, &[0, 42, 99], 1e-5);
}

#[test]
fn reciprocal_social_graph_all_agree() {
    let g = hierarchical_sbm(
        &HsbmConfig {
            nodes: 200,
            depth: 4,
            reciprocity: 0.8,
            min_degree: 3,
            ..Default::default()
        },
        77,
    );
    check_all_algorithms(&g, &[10, 150], 1e-5);
}

#[test]
fn disconnected_graph_all_agree() {
    // Two disjoint communities; queries see only their own side.
    let mut b = GraphBuilder::new(120);
    for base in [0u32, 60] {
        for i in 0..60 {
            b.push_edge(base + i, base + (i + 1) % 60);
            b.push_edge(base + i, base + (i * 7 + 3) % 60);
        }
    }
    let g = b.build();
    check_all_algorithms(&g, &[5, 65], 1e-5);
    // Cross-component scores are exactly zero.
    let idx = HgpaIndex::build(&g, &tight(), &HgpaBuildOptions::default());
    let ppv = idx.query(5);
    for v in 60..120 {
        assert_eq!(ppv.get(v), 0.0, "component leak at {v}");
    }
}

#[test]
fn random_gnp_graph_all_agree() {
    // G(n,p) has no community structure: worst case for the partitioner,
    // but exactness must hold regardless (Theorem 1/3 independence).
    let g = gnp_directed(120, 0.04, 33);
    check_all_algorithms(&g, &[0, 60, 119], 1e-5);
}

#[test]
fn preference_sets_by_linearity() {
    // Multi-node preference vectors via the Jeh–Widom linearity theorem:
    // the weighted sum of single-node queries.
    let g = hierarchical_sbm(
        &HsbmConfig {
            nodes: 150,
            ..Default::default()
        },
        13,
    );
    let cfg = tight();
    let idx = HgpaIndex::build(&g, &cfg, &HgpaBuildOptions::default());
    let pref = [(3u32, 0.5), (77u32, 0.3), (120u32, 0.2)];
    let oracle = exact_ppr::graph::dense::dense_ppv_preference(&g, &pref, ALPHA);
    let mut combined = vec![0.0f64; 150];
    for &(u, w) in &pref {
        for (v, x) in idx.query(u).iter() {
            combined[v as usize] += w * x;
        }
    }
    for v in 0..150 {
        assert!((combined[v] - oracle[v]).abs() < 1e-5, "v={v}");
    }
}

#[test]
fn preference_set_queries_are_first_class() {
    let g = hierarchical_sbm(
        &HsbmConfig {
            nodes: 180,
            ..Default::default()
        },
        29,
    );
    let cfg = tight();
    let pref = [(4u32, 0.6), (90u32, 0.4)];
    let oracle = exact_ppr::graph::dense::dense_ppv_preference(&g, &pref, ALPHA);

    let hgpa = HgpaIndex::build(&g, &cfg, &HgpaBuildOptions::default());
    let gpa = GpaIndex::build(&g, &cfg, &GpaBuildOptions::default());
    let jw = JwIndex::build(&g, gpa.hubs(), &cfg);
    let from_hgpa = hgpa.query_preference(&pref);
    let from_gpa = gpa.query_preference(&pref);
    let from_jw = jw.query_preference(&pref);
    for v in 0..180u32 {
        let o = oracle[v as usize];
        assert!((from_hgpa.get(v) - o).abs() < 1e-5, "hgpa v={v}");
        assert!((from_gpa.get(v) - o).abs() < 1e-5, "gpa v={v}");
        assert!((from_jw.get(v) - o).abs() < 1e-5, "jw v={v}");
    }

    // Through the cluster: still one round, same answer.
    let cluster = exact_ppr::cluster::Cluster::with_default_network();
    let report = cluster.query_preference(&hgpa, &pref);
    for v in 0..180u32 {
        assert!((report.result.get(v) - from_hgpa.get(v)).abs() < 1e-12);
    }
    assert_eq!(report.machines.len(), hgpa.machines());
}

#[test]
fn epsilon_contract_gpa_and_hgpa_match_power_iteration() {
    // The exactness contract the indexes advertise: ε bounds the
    // per-entry residual (PprConfig docs), and unpushed residual mass r
    // contributes at most r/α to any PPV entry. Reconstruction composes
    // two ε-accurate stages (partial vectors, then hub skeletons), so a
    // query built at tolerance ε matches the power-iteration ground
    // truth within 2ε/α. Measured errors sit at ~1.1·ε/α and scale
    // linearly with ε.
    let g = hierarchical_sbm(
        &HsbmConfig {
            nodes: 160,
            depth: 3,
            ..Default::default()
        },
        57,
    );
    let truth_cfg = PprConfig {
        epsilon: 1e-12,
        ..Default::default()
    };
    for epsilon in [1e-4, 1e-6, 1e-8] {
        let cfg = PprConfig {
            epsilon,
            ..Default::default()
        };
        let gpa = GpaIndex::build(&g, &cfg, &GpaBuildOptions::default());
        let hgpa = HgpaIndex::build(&g, &cfg, &HgpaBuildOptions::default());
        let bound = 2.0 * epsilon / cfg.alpha;
        for q in [0u32, 40, 80, 159] {
            let truth = power_iteration(&g, q, &truth_cfg);
            let from_gpa = gpa.query(q);
            let from_hgpa = hgpa.query(q);
            for v in 0..g.node_count() as u32 {
                let t = truth[v as usize];
                assert!(
                    (from_gpa.get(v) - t).abs() <= bound,
                    "GPA breaks ε-contract: ε={epsilon} q={q} v={v}: {} vs {t}",
                    from_gpa.get(v)
                );
                assert!(
                    (from_hgpa.get(v) - t).abs() <= bound,
                    "HGPA breaks ε-contract: ε={epsilon} q={q} v={v}: {} vs {t}",
                    from_hgpa.get(v)
                );
            }
        }
    }
}

#[test]
fn alpha_sweep_stays_exact() {
    let g = hierarchical_sbm(
        &HsbmConfig {
            nodes: 100,
            ..Default::default()
        },
        9,
    );
    for alpha in [0.05, 0.15, 0.5, 0.85] {
        let cfg = PprConfig {
            alpha,
            epsilon: 1e-9,
            ..Default::default()
        };
        let idx = HgpaIndex::build(&g, &cfg, &HgpaBuildOptions::default());
        let oracle = dense_ppv(&g, 20, alpha);
        let got = idx.query(20);
        for v in 0..100u32 {
            assert!(
                (oracle[v as usize] - got.get(v)).abs() < 1e-5,
                "alpha {alpha} v {v}"
            );
        }
    }
}
