//! Hostile-input suite for the wire protocol, mirroring the storage
//! tier's `persist_corruption` methodology: a decoder facing truncated,
//! bit-flipped, zero-filled, or deliberately forged frames must return
//! `Err` — it must never panic, and never allocate from a lying length
//! field (the budget gate runs before any allocation). Every frame byte
//! is covered by a check — the magic by comparison, the length field by
//! consistency with the bytes framed, the type byte and payload by the
//! CRC — so *any* single-byte mutation of a valid frame must be
//! detected.
//!
//! Forgeries go further than random corruption: they re-seal the CRC
//! over the tampered `type || payload` bytes, so the frame looks
//! internally consistent and only decode-level validation (bounds
//! checks, byte budgets, exact-consumption) stands between the forgery
//! and the allocator.

use exact_ppr::core::codec::crc32_tagged;
use exact_ppr::core::sparse::SparseVector;
use exact_ppr::graph::{EdgeUpdate, GraphDelta, NodeUpdate};
use exact_ppr::wire::{
    decode_frame, encode_frame, Message, DEFAULT_MAX_FRAME_BYTES, FRAME_HEADER_BYTES,
    PROTOCOL_VERSION,
};
use proptest::prelude::*;

/// Node-id bound every decode in this suite runs under.
const BOUND: u64 = 1000;

fn decode(bytes: &[u8]) -> Result<Message, exact_ppr::core::codec::CodecError> {
    decode_frame(bytes, BOUND, DEFAULT_MAX_FRAME_BYTES)
}

/// One valid frame of every variant, with non-trivial payloads.
fn sample_frames() -> Vec<(Message, Vec<u8>)> {
    let graph = exact_ppr::graph::csr::from_edges(6, &[(0, 1), (1, 2), (2, 5), (5, 0), (3, 4)]);
    let msgs = vec![
        Message::Hello {
            machine: 2,
            proto: PROTOCOL_VERSION,
        },
        Message::Welcome { epoch: 4, graph },
        Message::Request {
            round: 17,
            sources: vec![999, 0, 41, 500],
        },
        Message::RequestPref {
            round: 18,
            pairs: vec![(7, 0.25), (950, 0.75)],
        },
        Message::Reply {
            round: 17,
            machine: 2,
            compute_seconds: 3.25e-4,
            vectors: vec![
                SparseVector::from_entries(vec![(0, 0.5), (3, 0.125), (700, 1e-12)]),
                SparseVector::from_entries(vec![]),
                SparseVector::from_entries(vec![(999, f64::MIN_POSITIVE)]),
            ],
        },
        Message::Update {
            epoch: 5,
            delta: GraphDelta {
                nodes: vec![NodeUpdate::Add, NodeUpdate::Remove(3)],
                edges: vec![EdgeUpdate::Insert(0, 999), EdgeUpdate::Remove(1, 2)],
            },
        },
        Message::UpdateAck {
            epoch: 5,
            machine: 0,
        },
        Message::Ping { seq: 99 },
        Message::Pong {
            seq: 99,
            machine: 1,
            epoch: 5,
        },
        Message::Shutdown,
    ];
    msgs.into_iter()
        .map(|m| {
            let frame = encode_frame(&m).expect("valid message encodes");
            (m, frame)
        })
        .collect()
}

/// Re-seal a tampered frame: recompute the length field from the bytes
/// actually present and the CRC over `type || payload`, so only
/// decode-level validation can reject what's inside.
fn reseal(frame: &mut [u8]) {
    let payload_len = frame.len() - FRAME_HEADER_BYTES as usize;
    frame[5..9].copy_from_slice(&(payload_len as u32).to_le_bytes());
    let crc = crc32_tagged(frame[4], &frame[FRAME_HEADER_BYTES as usize..]);
    frame[9..13].copy_from_slice(&crc.to_le_bytes());
}

/// Every strict prefix of a valid frame must fail to decode (the full
/// frame must decode back to its message). Every cut point is swept for
/// small frames; large ones (Welcome ships a graph) are strided.
#[test]
fn truncation_always_errs() {
    for (msg, frame) in sample_frames() {
        assert_eq!(decode(&frame).expect("intact frame decodes"), msg);
        let mut cuts: Vec<usize> = (0..200.min(frame.len())).collect();
        cuts.extend((200..frame.len()).step_by(7));
        if frame.len() > 1 {
            cuts.push(frame.len() - 1);
        }
        for cut in cuts {
            assert!(
                decode(&frame[..cut]).is_err(),
                "prefix of {cut}/{} bytes must not decode",
                frame.len()
            );
        }
    }
}

/// Any single flipped bit — in the magic, the type byte, the length
/// field, the CRC, or the payload — is caught, for every variant.
#[test]
fn single_byte_corruption_always_errs() {
    for (_, frame) in sample_frames() {
        for pos in 0..frame.len() {
            let mut bad = frame.clone();
            bad[pos] ^= 0x40;
            assert!(
                decode(&bad).is_err(),
                "flip at byte {pos}/{} must not decode",
                frame.len()
            );
        }
    }
}

/// Zero-filled ranges (a failed-write / torn-buffer signature) must be
/// rejected wherever they land.
#[test]
fn zero_fill_always_errs() {
    let frames = sample_frames();
    let (_, reply) = &frames[4];
    let n = reply.len();
    for (start, len) in [(0, 4), (4, 1), (5, 4), (9, 4), (13, 8), (n / 2, 16), (n - 8, 8), (0, n)] {
        let mut bad = reply.clone();
        for b in &mut bad[start..(start + len).min(n)] {
            *b = 0;
        }
        assert!(
            decode(&bad).is_err(),
            "zero-fill [{start}, +{len}) must not decode"
        );
    }
}

/// A length field claiming gigabytes over a few real bytes must be
/// rejected by the budget gate before any allocation happens — the
/// anti-OOM property, stream edition.
#[test]
fn lying_length_field_is_rejected_cheaply() {
    let frame = encode_frame(&Message::Ping { seq: 7 }).expect("encode");
    // Beyond the reader's budget: refused from the header alone.
    let mut bad = frame.clone();
    bad[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
    let err = decode(&bad).unwrap_err();
    assert!(err.to_string().contains("budget"), "{err}");
    // Within budget but lying about the bytes present: a framing error,
    // not a blocking read or an allocation.
    let mut bad = frame.clone();
    bad[5..9].copy_from_slice(&1024u32.to_le_bytes());
    let err = decode(&bad).unwrap_err();
    assert!(err.to_string().contains("length field"), "{err}");
    // Shrinking the claimed length is equally a framing error.
    let mut bad = frame;
    bad[5..9].copy_from_slice(&1u32.to_le_bytes());
    assert!(decode(&bad).is_err());
}

/// A tiny re-sealed frame whose leading count varint claims ~2^60
/// vectors must die on the byte budget, not in `Vec::with_capacity`.
#[test]
fn resealed_lying_count_is_rejected_cheaply() {
    // Reply header fields (round, machine, compute_seconds) followed by
    // a colossal vector-count varint over no actual vector bytes.
    let mut frame = encode_frame(&Message::Reply {
        round: 1,
        machine: 0,
        compute_seconds: 0.0,
        vectors: vec![],
    })
    .expect("encode");
    frame.truncate(FRAME_HEADER_BYTES as usize + 8 + 4 + 8);
    frame.extend_from_slice(&[0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01]);
    reseal(&mut frame);
    assert!(decode(&frame).is_err());
    // Same attack on a Request's source count.
    let mut frame = encode_frame(&Message::Request {
        round: 1,
        sources: vec![],
    })
    .expect("encode");
    frame.truncate(FRAME_HEADER_BYTES as usize + 8);
    frame.extend_from_slice(&[0xFF; 10]);
    reseal(&mut frame);
    assert!(decode(&frame).is_err());
}

/// Re-sealed structural forgeries: out-of-bounds ids, unknown tags, a
/// wrong protocol variant for the bytes, trailing garbage. The CRC is
/// valid in every case — only decode validation can refuse.
#[test]
fn resealed_structural_forgeries_err() {
    // Request smuggling an out-of-bounds source id.
    let frame = encode_frame(&Message::Request {
        round: 3,
        sources: vec![0],
    })
    .expect("encode");
    let mut bad = frame.clone();
    let last = bad.len() - 1;
    bad[last] = 0x7F; // source 127 >= a bound of 10
    reseal(&mut bad);
    assert!(decode_frame(&bad, 10, DEFAULT_MAX_FRAME_BYTES).is_err());

    // Trailing garbage behind a complete payload: exact-consumption law.
    let mut bad = frame.clone();
    bad.extend_from_slice(b"XX");
    reseal(&mut bad);
    let err = decode(&bad).unwrap_err();
    assert!(err.to_string().contains("trailing"), "{err}");

    // Type byte rewritten (and re-sealed) to another variant: the
    // payload must not survive under the wrong parser (Ping demands
    // exactly 8 payload bytes; this Request frame carries 10).
    let mut bad = frame.clone();
    bad[4] = 8; // Request bytes relabeled as Ping
    reseal(&mut bad);
    assert!(decode(&bad).is_err());

    // Unknown frame types, sealed or not, are refused.
    let mut bad = frame;
    bad[4] = 11;
    reseal(&mut bad);
    assert!(decode(&bad).is_err());

    // Update carrying an unknown node-churn tag.
    let mut frame = encode_frame(&Message::Update {
        epoch: 1,
        delta: GraphDelta {
            nodes: vec![NodeUpdate::Add],
            edges: vec![],
        },
    })
    .expect("encode");
    let tag_at = FRAME_HEADER_BYTES as usize + 8 + 1; // epoch, node count
    frame[tag_at] = 2;
    reseal(&mut frame);
    let err = decode(&frame).unwrap_err();
    assert!(err.to_string().contains("tag"), "{err}");
}

/// Junk that is not a frame at all: empty, short, wrong magic.
#[test]
fn non_frame_bytes_err() {
    assert!(decode(b"").is_err());
    assert!(decode(b"PPR").is_err());
    assert!(decode(b"PPRW").is_err());
    assert!(decode(b"hello world, definitely not a frame").is_err());
    let err = decode(b"NOPE000000000").unwrap_err();
    assert!(err.to_string().contains("magic"), "{err}");
}

proptest! {
    #![proptest_config(ProptestConfig::default())]

    // Randomized corruption at a random position with a random XOR
    // delta, over every variant's frame: always `Err`, never a panic,
    // never a silently-accepted mutation.
    #[test]
    fn random_byte_corruption_never_decodes(pos in 0usize..100_000, delta in 1u8..=255) {
        for (_, frame) in sample_frames() {
            let mut bad = frame.clone();
            let p = pos % bad.len();
            bad[p] ^= delta;
            prop_assert!(decode(&bad).is_err(), "byte {p} xor {delta:#x} must not decode");
        }
    }

    // Random truncation points over every variant: always `Err`.
    #[test]
    fn random_truncation_never_decodes(cut in 0usize..100_000) {
        for (_, frame) in sample_frames() {
            let c = cut % frame.len();
            prop_assert!(decode(&frame[..c]).is_err(), "prefix {c} must not decode");
        }
    }
}
