//! Distributed-execution integration: one communication round, Theorem 4's
//! traffic bound, load balance, and agreement between the cluster path and
//! centralized queries — across machine counts and both indexes.

use exact_ppr::cluster::{Cluster, ClusterConfig, NetworkModel};
use exact_ppr::core::gpa::{GpaBuildOptions, GpaIndex};
use exact_ppr::core::hgpa::{HgpaBuildOptions, HgpaIndex};
use exact_ppr::core::PprConfig;
use exact_ppr::workload::{query_nodes, Dataset};

fn cfg() -> PprConfig {
    PprConfig {
        epsilon: 1e-7,
        ..Default::default()
    }
}

#[test]
fn hgpa_cluster_agrees_with_centralized_across_machine_counts() {
    let g = Dataset::Web.generate_with_nodes(1_200);
    let cluster = Cluster::with_default_network();
    for machines in [1usize, 3, 7, 10] {
        let idx = HgpaIndex::build(
            &g,
            &cfg(),
            &HgpaBuildOptions {
                machines,
                ..Default::default()
            },
        );
        for &q in &query_nodes(&g, 4, 3) {
            let report = cluster.query(&idx, q);
            let central = idx.query(q);
            assert_eq!(report.machines.len(), machines);
            for v in 0..g.node_count() as u32 {
                assert!(
                    (report.result.get(v) - central.get(v)).abs() < 1e-12,
                    "machines {machines} q {q} v {v}"
                );
            }
        }
    }
}

#[test]
fn theorem4_traffic_bound_holds() {
    // Communication is O(n·|V|): each machine ships at most one |V|-sized
    // vector per query, regardless of dataset or tolerance.
    let g = Dataset::Youtube.generate_with_nodes(1_500);
    let cluster = Cluster::with_default_network();
    for machines in [2usize, 5, 10] {
        let idx = HgpaIndex::build(
            &g,
            &cfg(),
            &HgpaBuildOptions {
                machines,
                ..Default::default()
            },
        );
        let per_vector_cap = 8 + 12 * g.node_count() as u64;
        for &q in &query_nodes(&g, 3, 11) {
            let report = cluster.query(&idx, q);
            for m in &report.machines {
                assert!(m.bytes_sent <= per_vector_cap, "machine over bound");
            }
            assert!(report.total_bytes() <= machines as u64 * per_vector_cap);
        }
    }
}

#[test]
fn gpa_cluster_agrees_too() {
    let g = Dataset::Email.generate_with_nodes(900);
    let idx = GpaIndex::build(
        &g,
        &cfg(),
        &GpaBuildOptions {
            subgraphs: 6,
            machines: 4,
            ..Default::default()
        },
    );
    let cluster = Cluster::new(ClusterConfig {
        machines: 4,
        network: NetworkModel::infinite(),
        ..ClusterConfig::default()
    });
    let report = cluster.query(&idx, 100);
    let central = idx.query(100);
    for v in 0..g.node_count() as u32 {
        assert!((report.result.get(v) - central.get(v)).abs() < 1e-12);
    }
    assert_eq!(report.modeled_network_seconds, 0.0);
}

#[test]
fn offline_work_is_distributed() {
    // Per-machine offline times exist for every machine and none does all
    // the work (the §5 claim: each machine only precomputes its share).
    let g = Dataset::Web.generate_with_nodes(1_500);
    let (_, report) = HgpaIndex::build_distributed(
        &g,
        &cfg(),
        &HgpaBuildOptions {
            machines: 4,
            ..Default::default()
        },
    );
    assert_eq!(report.per_machine_seconds.len(), 4);
    let total: f64 = report.per_machine_seconds.iter().sum();
    let max = report.max_machine_seconds();
    assert!(total > 0.0);
    assert!(
        max < 0.9 * total,
        "one machine did almost everything: {:?}",
        report.per_machine_seconds
    );
}

#[test]
fn storage_partition_is_complete_and_balanced() {
    let g = Dataset::Pld.generate_with_nodes(1_500);
    let idx = HgpaIndex::build(
        &g,
        &cfg(),
        &HgpaBuildOptions {
            machines: 5,
            ..Default::default()
        },
    );
    let bytes = idx.storage_bytes_per_machine();
    assert_eq!(bytes.len(), 5);
    let total: u64 = bytes.iter().sum();
    let max = *bytes.iter().max().unwrap();
    assert!(total > 0);
    // Paper's load-balance claim: the max machine holds roughly 1/n.
    assert!(
        (max as f64) < 0.45 * total as f64,
        "storage imbalance: {bytes:?}"
    );
}

#[test]
fn runtime_metrics_are_consistent() {
    let g = Dataset::Web.generate_with_nodes(1_000);
    let idx = HgpaIndex::build(&g, &cfg(), &HgpaBuildOptions::default());
    let cluster = Cluster::with_default_network();
    let r = cluster.query(&idx, 50);
    assert!(r.runtime_seconds() >= r.max_machine_seconds());
    assert!(r.modeled_end_to_end_seconds() >= r.runtime_seconds());
    assert_eq!(
        r.total_bytes(),
        r.machines.iter().map(|m| m.bytes_sent).sum::<u64>()
    );
}
