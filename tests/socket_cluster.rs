//! Socket-transport gate: the real multi-process cluster must answer
//! **bit-identically** to the modeled in-process transport — on plain
//! fan-outs, across epoch barriers, and through worker crashes with
//! supervised restarts. Measured wire bytes must equal the shared frame
//! formula the modeled transport counts with.

use exact_ppr::cluster::{Cluster, SocketCluster, SocketConfig};
use exact_ppr::prelude::*;
use exact_ppr::serve::DynamicPprServer;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

fn worker_command() -> Vec<String> {
    vec![env!("CARGO_BIN_EXE_ppr-worker").to_string()]
}

fn sample(nodes: usize, seed: u64) -> CsrGraph {
    hierarchical_sbm(
        &HsbmConfig {
            nodes,
            depth: 3,
            locality: 0.9,
            ..Default::default()
        },
        seed,
    )
}

fn build_index(g: &CsrGraph, machines: usize) -> HgpaIndex {
    let cfg = PprConfig {
        epsilon: 1e-7,
        ..Default::default()
    };
    HgpaIndex::build(
        g,
        &cfg,
        &HgpaBuildOptions {
            machines,
            ..Default::default()
        },
    )
}

fn scratch_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ppr-socket-tests");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(format!("{name}-{}.pprx", std::process::id()))
}

fn launch(name: &str, index: &HgpaIndex, g: &CsrGraph, chaos: Vec<String>) -> Arc<SocketCluster> {
    let mut config = SocketConfig::new(index.machines(), worker_command(), scratch_path(name));
    config.chaos = chaos;
    Arc::new(SocketCluster::launch(config, index, g, 0).expect("launch socket cluster"))
}

fn bits_equal(a: &SparseVector, b: &SparseVector) -> bool {
    a.nnz() == b.nnz()
        && a.iter()
            .zip(b.iter())
            .all(|((ia, va), (ib, vb))| ia == ib && va.to_bits() == vb.to_bits())
}

/// Plain fan-outs: batch, preference, and resilient rounds all answer
/// bit-identically over the wire, and every machine's *measured* frame
/// size equals the *modeled* byte count — one formula, two transports.
#[test]
fn socket_rounds_are_bit_identical_to_modeled_and_bytes_match() {
    let g = sample(220, 11);
    let idx = build_index(&g, 4);
    let modeled = Cluster::with_default_network();
    let mut socketed = Cluster::with_default_network();
    let sock = launch("plain", &idx, &g, Vec::new());
    socketed.attach_socket(sock.clone());

    let sources = [0u32, 17, 119, 219];
    let a = modeled.query_many(&idx, &sources);
    let b = socketed.query_many(&idx, &sources);
    assert_eq!(a.results.len(), b.results.len());
    for (va, vb) in a.results.iter().zip(&b.results) {
        assert!(bits_equal(va, vb), "batch answers diverged");
    }
    // Satellite gate: modeled bytes (shared frame formula) == measured
    // bytes (what actually crossed the socket), machine by machine.
    for (ma, mb) in a.machines.iter().zip(&b.machines) {
        assert_eq!(ma.bytes_sent, mb.bytes_sent, "modeled != measured bytes");
        assert_eq!(ma.entries, mb.entries);
    }

    let pref = [(3u32, 0.7), (140u32, 0.3)];
    let pa = modeled.query_preference(&idx, &pref);
    let pb = socketed.query_preference(&idx, &pref);
    assert!(bits_equal(&pa.result, &pb.result), "preference diverged");
    assert_eq!(pa.total_bytes(), pb.total_bytes());

    // The resilient path reports a complete round with per-machine
    // attempt counts of 1 on a healthy cluster and sheds nothing.
    let ra = modeled.try_query_many(&idx, &sources);
    let rb = socketed.try_query_many(&idx, &sources);
    assert!(rb.complete());
    for (va, vb) in ra.results.iter().zip(&rb.results) {
        assert!(bits_equal(va, vb), "resilient answers diverged");
    }
    for o in &rb.outcome.machines {
        assert!(o.answered);
        assert_eq!(o.attempts, 1);
    }
    assert_eq!(rb.modeled_fault_seconds, 0.0);

    // Measured wire traffic is visible and frame-accounted.
    let metrics = sock.metrics();
    assert!(metrics.bytes_received > 0);
    assert!(metrics.frames_received >= 12, "3 rounds x 4 machines");
    assert_eq!(sock.supervisor_stats().restarts, 0);
}

/// `kill -9` a worker between rounds: the supervisor detects the corpse,
/// cold-starts a replacement from the persisted snapshot, and the next
/// round is bit-identical to a cluster that never crashed.
#[test]
fn sigkill_between_rounds_recovers_bit_identically() {
    let g = sample(180, 23);
    let idx = build_index(&g, 3);
    let modeled = Cluster::with_default_network();
    let mut socketed = Cluster::with_default_network();
    let sock = launch("sigkill", &idx, &g, Vec::new());
    socketed.attach_socket(sock.clone());

    let sources = [5u32, 42, 160];
    let before = socketed.query_many(&idx, &sources);

    // Real SIGKILL, delivered from outside the process tree's control.
    let victim = sock.worker_pids()[1].expect("machine 1 is live");
    let status = std::process::Command::new("kill")
        .args(["-9", &victim.to_string()])
        .status()
        .expect("spawn kill");
    assert!(status.success());

    // The next rounds must come back exact — the round path itself
    // detects the dead connection, restarts, and resends.
    let after = socketed.query_many(&idx, &sources);
    let reference = modeled.query_many(&idx, &sources);
    for ((vb, va), vr) in before
        .results
        .iter()
        .zip(&after.results)
        .zip(&reference.results)
    {
        assert!(bits_equal(vb, va), "crash changed the answer");
        assert!(bits_equal(va, vr), "post-recovery != modeled");
    }
    assert!(sock.supervisor_stats().restarts >= 1, "no restart recorded");
    assert!(sock.worker_pids().iter().all(Option::is_some));
}

/// A worker armed to abort on receiving its Nth request dies *mid-batch*
/// (after the coordinator committed the round, before replying). The
/// supervisor must restart it from the snapshot and resend within the
/// same round — the caller never sees anything but exact answers.
#[test]
fn crash_mid_batch_is_restarted_and_resent_within_the_round() {
    let g = sample(160, 31);
    let idx = build_index(&g, 3);
    let modeled = Cluster::with_default_network();
    let mut socketed = Cluster::with_default_network();
    // Machine 2 dies on its second request (mid-batch of round 2).
    let chaos = vec![
        String::new(),
        String::new(),
        "kill-after-requests:2".to_string(),
    ];
    let sock = launch("midbatch", &idx, &g, chaos);
    socketed.attach_socket(sock.clone());

    let sources = [1u32, 77, 150];
    for round in 0..3 {
        let got = socketed.query_many(&idx, &sources);
        let want = modeled.query_many(&idx, &sources);
        for (vg, vw) in got.results.iter().zip(&want.results) {
            assert!(bits_equal(vg, vw), "round {round} diverged");
        }
    }
    let stats = sock.supervisor_stats();
    assert!(stats.restarts >= 1, "mid-batch crash never restarted");
}

/// A worker that answers with a corrupt frame is treated exactly like a
/// crashed one: the bad frame is an error (not a panic), the worker is
/// recycled, and the resent request yields the exact answer.
#[test]
fn corrupt_reply_frame_is_recycled_not_trusted() {
    let g = sample(150, 41);
    let idx = build_index(&g, 3);
    let modeled = Cluster::with_default_network();
    let mut socketed = Cluster::with_default_network();
    let chaos = vec![String::new(), "garbage-reply:2".to_string(), String::new()];
    let sock = launch("garbage", &idx, &g, chaos);
    socketed.attach_socket(sock.clone());

    let sources = [9u32, 80];
    for round in 0..3 {
        let got = socketed.query_many(&idx, &sources);
        let want = modeled.query_many(&idx, &sources);
        for (vg, vw) in got.results.iter().zip(&want.results) {
            assert!(bits_equal(vg, vw), "round {round} diverged");
        }
    }
    assert!(sock.supervisor_stats().restarts >= 1);
}

/// Shutting the cluster down leaves no orphan worker processes.
#[test]
fn shutdown_reaps_every_worker() {
    let g = sample(120, 53);
    let idx = build_index(&g, 2);
    let sock = launch("reap", &idx, &g, Vec::new());
    let pids: Vec<u32> = sock.worker_pids().into_iter().flatten().collect();
    assert_eq!(pids.len(), 2);
    sock.shutdown();
    for pid in pids {
        // kill -0 probes liveness without signalling. ESRCH (failure)
        // means the process is gone — which is what we demand.
        let alive = std::process::Command::new("kill")
            .args(["-0", &pid.to_string()])
            .status()
            .expect("spawn kill")
            .success();
        assert!(!alive, "worker {pid} outlived the cluster");
    }
}

/// The serving stack end to end: two `DynamicPprServer`s fed the same
/// mixed read/write stream — one on the modeled transport, one on real
/// worker processes — must emit bit-identical responses at every step,
/// with epoch barriers published over the wire. A mid-stream SIGKILL
/// plus supervised restart must not change a single bit.
#[test]
fn dynamic_serving_over_sockets_matches_modeled_across_epochs_and_a_crash() {
    let g = sample(170, 67);
    let idx = build_index(&g, 3);
    let mut modeled =
        DynamicPprServer::from_index(g.clone(), idx.clone(), ServeConfig::default());
    let mut socketed = DynamicPprServer::from_index(g.clone(), idx, ServeConfig::default());
    let sock = launch("dynamic", socketed.index(), socketed.graph(), Vec::new());
    socketed.attach_socket(sock.clone());

    let steps: Vec<(Vec<Request>, Vec<EdgeUpdate>)> = vec![
        (vec![Request::Ppv(4), Request::TopK { source: 9, k: 5 }], vec![]),
        (
            vec![Request::Preference(vec![(3, 0.5), (90, 0.5)])],
            vec![EdgeUpdate::Insert(4, 90), EdgeUpdate::Insert(90, 4)],
        ),
        (vec![Request::Ppv(4), Request::Ppv(90)], vec![]),
        (
            vec![Request::Ppv(12)],
            vec![EdgeUpdate::Remove(4, 90), EdgeUpdate::Insert(12, 30)],
        ),
        (vec![Request::Ppv(4), Request::Ppv(12), Request::Ppv(30)], vec![]),
    ];

    for (i, (requests, updates)) in steps.iter().enumerate() {
        if i == 3 {
            // Crash a worker right before an epoch barrier + queries.
            let victim = sock.worker_pids()[0].expect("machine 0 live");
            assert!(std::process::Command::new("kill")
                .args(["-9", &victim.to_string()])
                .status()
                .expect("spawn kill")
                .success());
        }
        if !updates.is_empty() {
            let a = modeled.apply_updates(updates).expect("modeled update");
            let b = socketed.apply_updates(updates).expect("socketed update");
            assert_eq!(a.epoch, b.epoch, "step {i} epochs diverged");
            assert!(
                socketed.socket().is_some(),
                "step {i}: transport must survive the barrier"
            );
        }
        let ra = modeled.run_batch(requests).responses;
        let rb = socketed.run_batch(requests).responses;
        assert_eq!(ra.len(), rb.len());
        for (qa, qb) in ra.iter().zip(&rb) {
            assert!(responses_bits_equal(qa, qb), "step {i} diverged");
        }
    }
    assert_eq!(sock.epoch(), socketed.epoch());
    assert!(sock.supervisor_stats().restarts >= 1);
}

fn responses_bits_equal(a: &Response, b: &Response) -> bool {
    match (a, b) {
        (Response::Ppv(x), Response::Ppv(y)) => bits_equal(x, y),
        (Response::TopK(x), Response::TopK(y)) => {
            x.len() == y.len()
                && x.iter()
                    .zip(y)
                    .all(|((ia, va), (ib, vb))| ia == ib && va.to_bits() == vb.to_bits())
        }
        _ => false,
    }
}

// Property gate: on random graphs and random mixed read/write streams —
// including a mid-stream SIGKILL with supervised restart — the socket
// transport reproduces the modeled transport bit for bit: every query
// answer, every epoch. This is the acceptance pin for the transport
// abstraction: `Modeled` and `Socket` are the same cluster. The default
// case count is small (each case boots a real worker fleet); CI's deep
// lane raises it through `PROPTEST_CASES`.
proptest! {
    #![proptest_config(ProptestConfig {
        cases: std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(4),
    })]
    #[test]
    fn random_mixed_streams_are_bit_identical_across_transports(
        nodes in 70usize..130,
        script in proptest::collection::vec((0u64..1_000_000, 0u8..5), 3..8),
        seed in 0u64..1_000_000,
    ) {
        run_random_stream(nodes, &script, seed);
    }
}

fn run_random_stream(nodes: usize, script: &[(u64, u8)], seed: u64) {
    let g = sample(nodes, seed);
    let idx = build_index(&g, 3);
    let mut modeled =
        DynamicPprServer::from_index(g.clone(), idx.clone(), ServeConfig::default());
    let mut socketed = DynamicPprServer::from_index(g.clone(), idx, ServeConfig::default());
    let sock = launch("prop", socketed.index(), socketed.graph(), Vec::new());
    socketed.attach_socket(sock.clone());

    for (i, &(r, kind)) in script.iter().enumerate() {
        let n = socketed.graph().node_count() as u32;
        let a = (r % n as u64) as u32;
        let b = ((r / 7) % n as u64) as u32;
        match kind {
            // Reads: single PPV, preference pair, top-k.
            0 => {
                let reqs = [Request::Ppv(a), Request::Ppv(b)];
                let ra = modeled.run_batch(&reqs).responses;
                let rb = socketed.run_batch(&reqs).responses;
                for (qa, qb) in ra.iter().zip(&rb) {
                    assert!(responses_bits_equal(qa, qb), "step {i} read diverged");
                }
            }
            1 => {
                let reqs = [Request::Preference(vec![(a, 0.4), (b, 0.6)])];
                let ra = modeled.run_batch(&reqs).responses;
                let rb = socketed.run_batch(&reqs).responses;
                assert!(
                    responses_bits_equal(&ra[0], &rb[0]),
                    "step {i} preference diverged"
                );
            }
            // Chaos: SIGKILL a random worker mid-stream. The supervisor
            // must restart it from the snapshot; nothing downstream may
            // notice (every later step still asserts bit-identity).
            2 => {
                let machine = (r % sock.machines() as u64) as usize;
                if let Some(pid) = sock.worker_pids()[machine] {
                    let killed = std::process::Command::new("kill")
                        .args(["-9", &pid.to_string()])
                        .status()
                        .expect("spawn kill")
                        .success();
                    assert!(killed, "step {i}: kill -9 failed");
                }
            }
            // Writes: insert or remove an edge (no-ops allowed; both
            // replicas must agree they are no-ops).
            3 => {
                let upd = [EdgeUpdate::Insert(a, b)];
                let ea = modeled.apply_updates(&upd);
                let eb = socketed.apply_updates(&upd);
                assert_eq!(ea.is_ok(), eb.is_ok(), "step {i} insert verdicts");
                assert_eq!(modeled.epoch(), socketed.epoch(), "step {i} epochs");
            }
            _ => {
                let upd = [EdgeUpdate::Remove(a, b)];
                let ea = modeled.apply_updates(&upd);
                let eb = socketed.apply_updates(&upd);
                assert_eq!(ea.is_ok(), eb.is_ok(), "step {i} remove verdicts");
                assert_eq!(modeled.epoch(), socketed.epoch(), "step {i} epochs");
            }
        }
    }
    // Close with a read sweep so every epoch's state is re-verified.
    let reqs = [Request::Ppv(0), Request::Ppv(1), Request::Ppv(2)];
    let ra = modeled.run_batch(&reqs).responses;
    let rb = socketed.run_batch(&reqs).responses;
    for (qa, qb) in ra.iter().zip(&rb) {
        assert!(responses_bits_equal(qa, qb), "final sweep diverged");
    }
}
